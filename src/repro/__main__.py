"""Command-line front door: ``python -m repro <command>``.

Five commands, mirroring the paper's narrative:

- ``demo`` — bring the UMTS connection up on the simulated PlanetLab
  node, show the ``umts`` command output, send one packet each way;
- ``trace`` — the same walk-through under the observability layer:
  structured spans for every dial-up phase and vsys command, the
  metrics registry, and (on failure) the flight-recorder dump;
- ``voip`` — the Figures 1-3 experiment (72 kbit/s VoIP-like flow),
  printed as a summary table for both paths;
- ``saturation`` — the Figures 4-7 experiment (1 Mbit/s flow) with the
  RAB adaptation timeline;
- ``bench`` — the hot-path benchmark harness: run the scenario
  registry, refresh the ``BENCH_*.json`` baselines, or check fresh
  runs against them (``--check`` exits 1 on regression; see
  docs/BENCHMARKS.md);
- ``lint`` — the domain-aware static analyzer: determinism rules, the
  RFC 1661 FSM exhaustiveness check, and annotation coverage for the
  strict packages (exit 1 on findings; see docs/STATIC_ANALYSIS.md);
- ``chaos`` — the fault-injection campaign: every built-in scenario
  must recover or degrade cleanly, never hang, and (``--check``)
  reproduce its recovery timeline bit-identically (see docs/FAULTS.md);
- ``sweep`` — seed sweeps of the characterization experiments, sharded
  across worker processes (``-j N``) with a deterministic merge and a
  content-addressed result cache (see docs/PARALLEL.md);
- ``report`` — campaign-scale telemetry: span timelines with the
  bring-up critical path, deterministic sim-time profiles, and
  OpenMetrics export of a single run's or a whole campaign's metrics
  registry (see docs/OBSERVABILITY.md);
- ``fleet`` — the fleet-scale testbed: hundreds of simulated PlanetLab
  nodes in sharded group simulations, a central controller leasing the
  UMTS interface per slice (FIFO + priority preemption), the paper's
  experiment across every node-pair, and fairness/starvation metrics
  (see docs/FLEET.md).

``bench``, ``chaos``, ``sweep`` and ``fleet`` all run through the
campaign runner (:mod:`repro.parallel`): ``-j N`` shards jobs across
processes without changing a byte of the merged output.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import (
    OneLabScenario,
    PATH_ETHERNET,
    PATH_UMTS,
    cbr,
    run_characterization,
    voip_g711,
)
from repro.analysis.compare import compare_paths, report_lines
from repro.obs import FlightRecorder, Observability, format_event


def _cmd_demo(args: argparse.Namespace) -> int:
    scenario = OneLabScenario(seed=args.seed)
    umts = scenario.umts_command()
    result = umts.start_blocking()
    for line in result.lines:
        print(line)
    if not result.ok:
        return 1
    umts.add_destination_blocking(scenario.inria_addr)
    for line in umts.status_blocking().lines:
        print(line)
    umts.stop_blocking()
    print("umts stopped; demo complete "
          f"({scenario.sim.now:.1f} simulated seconds)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    scenario = OneLabScenario(seed=args.seed)
    obs = Observability(scenario.sim)
    obs.bind_node(scenario.napoli)
    if args.last is not None:
        if args.last <= 0:
            print("trace: --last must be positive", file=sys.stderr)
            return 2
        # A bounded ring instead of the unbounded ListSink: memory stays
        # O(N) however long the run, same trade as the flight recorder.
        ring = obs.trace.attach(FlightRecorder(capacity=args.last, trigger_kinds=()))
        events = None
    else:
        ring = None
        events = obs.record_events()
    jsonl = obs.export_jsonl(args.jsonl) if args.jsonl else None
    if args.fail:
        # Make the cell refuse the PDP context: registration succeeds,
        # but ATD*99# answers NO CARRIER — the forced dial-up failure
        # that triggers the flight recorder.
        def _refuse_data_call(modem, apn=None):
            raise RuntimeError("no radio bearer available (--fail)")

        scenario.napoli.modem.network.open_data_call = _refuse_data_call
    umts = scenario.umts_command()
    result = umts.start_blocking()
    if result.ok:
        umts.add_destination_blocking(scenario.inria_addr)
        umts.status_blocking()
        umts.stop_blocking()
    if events is not None:
        recorded = events.events
        print(f"trace: {len(recorded)} events, "
              f"{scenario.sim.now:.1f} simulated seconds")
    else:
        recorded = ring.recent()
        print(f"trace: last {len(recorded)} of {ring.seen} events, "
              f"{scenario.sim.now:.1f} simulated seconds")
    for event in recorded:
        print(format_event(event))
    print()
    print("metrics:")
    for line in obs.metrics.summary_lines():
        print("  " + line)
    if obs.flight.dumps:
        print()
        for line in obs.flight.dump_lines():
            print(line)
    if jsonl is not None:
        jsonl.close()
        print(f"\ntrace exported to {args.jsonl} ({jsonl.written} events)")
    return 0 if result.ok else 1


def _run_both(spec_factory, seed: int):
    umts = run_characterization(spec_factory(), path=PATH_UMTS, seed=seed)
    ethernet = run_characterization(spec_factory(), path=PATH_ETHERNET, seed=seed)
    return umts, ethernet


def _print_summaries(umts, ethernet) -> None:
    for label, result in (("UMTS-to-Ethernet", umts), ("Ethernet-to-Ethernet", ethernet)):
        s = result.summary
        print(f"{label}:")
        print(f"  bitrate {s.mean_bitrate_kbps:8.1f} kbit/s   "
              f"loss {s.loss_fraction * 100:5.1f}%   "
              f"jitter {s.mean_jitter * 1000:7.2f} ms   "
              f"RTT {s.mean_rtt * 1000:7.1f} ms (max {s.max_rtt * 1000:.0f})")
    for line in report_lines(compare_paths(umts, ethernet, "UMTS", "Ethernet")):
        print(line)


def _cmd_voip(args: argparse.Namespace) -> int:
    print(f"VoIP-like flow, {args.duration:.0f}s per path (Figures 1-3)...")
    umts, ethernet = _run_both(lambda: voip_g711(duration=args.duration), args.seed)
    _print_summaries(umts, ethernet)
    return 0


def _cmd_saturation(args: argparse.Namespace) -> int:
    print(f"1 Mbit/s flow, {args.duration:.0f}s per path (Figures 4-7)...")
    umts, ethernet = _run_both(lambda: cbr(duration=args.duration), args.seed)
    origin = umts.decoder.origin
    print("RAB grades:", " -> ".join(
        f"{rate / 1000:.0f}k@{max(0.0, t - origin):.0f}s"
        for t, rate in umts.rab_history.as_pairs()
    ))
    _print_summaries(umts, ethernet)
    return 0


def _make_cache(args: argparse.Namespace):
    """The :class:`ResultCache` the campaign flags describe (or None)."""
    if args.no_cache:
        return None
    from repro.parallel import ResultCache

    return ResultCache(root=args.cache_dir)


def _report_cache(args: argparse.Namespace, cache) -> None:
    if not args.cache_stats:
        return
    print("cache: disabled" if cache is None else cache.stats.summary())


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        FLEET_SCENARIOS,
        REGISTRY,
        baseline_path,
        compare_result,
        fleet_summary_payload,
        load_baseline,
        result_payload,
        save_baseline,
    )
    from repro.bench.runner import BenchResult
    from repro.parallel import bench_jobs, run_campaign

    if args.list:
        for scenario in REGISTRY.values():
            print(f"{scenario.name:<24} {scenario.description}")
        return 0
    names = args.scenario or list(REGISTRY)
    unknown = [name for name in names if name not in REGISTRY]
    if unknown:
        print(f"unknown scenario(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(REGISTRY)}", file=sys.stderr)
        return 2
    cache = _make_cache(args)
    jobs = bench_jobs(names, repeats=args.repeats, warmup=args.warmup)
    campaign = run_campaign(jobs, workers=args.jobs, cache=cache)
    by_key = campaign.by_key()
    failures = 0
    payloads = {}
    for name in names:
        scenario = REGISTRY[name]
        job_result = by_key[f"bench:{name}"]
        result = BenchResult(
            name, list(job_result.volatile["times_s"]), job_result.stable["warmup"]
        )
        print(result.summary_line())
        if scenario.reference_median_s is not None:
            speedup = scenario.reference_median_s / result.median_s
            print(f"{'':<24} speedup {speedup:6.2f}x vs pre-PR median "
                  f"{scenario.reference_median_s * 1000:.3f} ms")
        payload = result_payload(result, scenario)
        payloads[name] = payload
        if args.output_dir is not None:
            save_baseline(payload, baseline_path(name, args.output_dir))
        if args.update_baselines:
            path = save_baseline(payload, baseline_path(name, args.root))
            print(f"         wrote {path}")
        if args.check:
            baseline = load_baseline(baseline_path(name, args.root))
            if baseline is None:
                print(f"MISSING  {name:<24} no {baseline_path(name, args.root)} "
                      "(run with --update-baselines first)")
                failures += 1
                continue
            comparison = compare_result(
                baseline, result, scenario.tolerance, scale=args.tolerance_scale
            )
            print(comparison.verdict_line())
            if comparison.regressed:
                failures += 1
    # Both fleet scenarios ran: also emit the combined BENCH_fleet.json
    # gate document (events/sec + datacalls/sec vs the pre-PR engine).
    if all(name in payloads for name in FLEET_SCENARIOS):
        summary = fleet_summary_payload(payloads)
        if args.output_dir is not None:
            save_baseline(summary, baseline_path("fleet", args.output_dir))
        if args.update_baselines:
            path = save_baseline(summary, baseline_path("fleet", args.root))
            print(f"         wrote {path}")
    if args.jobs != 1:
        print(f"campaign: {len(names)} scenario(s) across {campaign.workers} "
              f"worker(s) in {campaign.wall_s:.2f}s")
    _report_cache(args, cache)
    if args.check:
        print(f"bench check: {len(names) - failures}/{len(names)} scenarios pass")
    return 1 if failures else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    import repro
    from repro.lint import (
        RULES,
        UnknownRuleError,
        human_report,
        jsonl_report,
        lint_campaign,
        lint_paths,
        ruleset_digest,
    )

    if args.list_rules:
        for rule_id in sorted(RULES):
            rule = RULES[rule_id]
            print(f"{rule_id:<20} {rule.severity.value:<8} {rule.description}")
        return 0
    paths = args.paths or [str(Path(repro.__file__).parent)]
    campaign = None
    try:
        if args.jobs == 1 and args.no_cache:
            findings = lint_paths(paths, rule_ids=args.rule or None)
        else:
            # The cache's source digest is the lint package itself, not
            # the whole tree: per-file content digests in the job keys
            # cover source edits, so only analyzer changes flush it.
            cache = None
            if not args.no_cache:
                from repro.parallel import ResultCache

                cache = ResultCache(
                    root=args.cache_dir,
                    source_digest=f"lint:{ruleset_digest()}",
                )
            findings, campaign = lint_campaign(
                paths, rule_ids=args.rule or None,
                workers=args.jobs, cache=cache,
            )
            _report_cache(args, cache)
    except UnknownRuleError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        print(f"available: {', '.join(exc.known)}", file=sys.stderr)
        return 2
    if args.jsonl is not None:
        lines = jsonl_report(findings)
        if args.jsonl == "-":
            for line in lines:
                print(line)
        else:
            Path(args.jsonl).write_text("\n".join(lines) + ("\n" if lines else ""))
            print(f"wrote {len(lines)} finding(s) to {args.jsonl}")
    else:
        for line in human_report(findings):
            print(line)
    if campaign is not None and args.jobs != 1:
        print(f"campaign: {len(campaign.results)} file(s) across "
              f"{campaign.workers} worker(s) in {campaign.wall_s:.2f}s")
    checked = "all rules" if not args.rule else ", ".join(args.rule)
    print(f"lint: {len(findings)} finding(s) ({checked})")
    return 1 if findings else 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.faults.chaos import BUILTIN_SCENARIOS
    from repro.parallel import chaos_jobs, run_campaign, scenario_jobs

    if args.list:
        if args.scenario_grammar:
            from repro.scenarios import point_names

            for name in point_names():
                print(name)
            return 0
        for scenario in BUILTIN_SCENARIOS:
            print(f"{scenario.name:<24} expect {scenario.expected:<10} "
                  f"{scenario.description}")
        return 0
    cache = _make_cache(args)
    try:
        if args.scenario_grammar:
            from repro.scenarios import ScenarioSpecError

            try:
                jobs = scenario_jobs(names=args.scenario or None)
            except ScenarioSpecError as exc:
                print(f"chaos: {exc}", file=sys.stderr)
                return 2
        else:
            jobs = chaos_jobs(names=args.scenario or None)
    except KeyError as exc:
        print(f"chaos: {exc.args[0]}", file=sys.stderr)
        return 2
    campaign = run_campaign(jobs, workers=args.jobs, cache=cache)
    by_key = campaign.by_key()
    reports = [by_key[job.key].stable for job in jobs]
    if args.check:
        # The determinism proof re-runs the whole campaign *fresh* —
        # never against the cache — so a hit must match what the
        # current code actually produces.
        recheck = run_campaign(jobs, workers=args.jobs, cache=None).by_key()
        for job, report in zip(jobs, reports):
            report["deterministic"] = (
                recheck[job.key].stable["digest"] == report["digest"]
            )
            if not report["deterministic"]:
                report["ok"] = False
    for report in reports:
        verdict = "ok  " if report["ok"] else "FAIL"
        if args.scenario_grammar:
            detail = report["outcome"]
            if args.check and not report.get("deterministic", True):
                detail += " NON-DETERMINISTIC"
            print(f"{verdict} {report['scenario']:<28} {detail:<12} "
                  f"ho={report['handovers']} reneg={report['renegotiations']} "
                  f"t={report['sim_time']:.1f}s")
            continue
        detail = f"{report['outcome']} (expected {report['expected']})"
        if args.check and not report.get("deterministic", True):
            detail += " NON-DETERMINISTIC"
        print(f"{verdict} {report['scenario']:<24} {detail:<36} "
              f"faults={report['faults_injected']} retries={report['retries']} "
              f"t={report['sim_time']:.1f}s")
    if args.jsonl is not None:
        lines = [json.dumps(report, sort_keys=True) for report in reports]
        Path(args.jsonl).write_text("\n".join(lines) + "\n")
        print(f"wrote {len(lines)} report(s) to {args.jsonl}")
    counts = {}
    for report in reports:
        counts[report["outcome"]] = counts.get(report["outcome"], 0) + 1
    summary = " ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    ok = sum(1 for report in reports if report["ok"])
    print(f"chaos: {ok}/{len(reports)} scenarios as expected ({summary})")
    print(f"campaign: digest={campaign.digest[:16]} workers={campaign.workers} "
          f"cached={campaign.cached_count()}/{len(reports)}")
    _report_cache(args, cache)
    return 1 if ok < len(reports) else 0


def _parse_seed_spec(spec: str) -> list:
    """``1:8`` → [1..8]; ``3,5,9`` → [3, 5, 9]; ``7`` → [7]."""
    if ":" in spec:
        lo_text, hi_text = spec.split(":", 1)
        lo, hi = int(lo_text), int(hi_text)
        if hi < lo:
            raise ValueError(f"bad seed range {spec!r}")
        return list(range(lo, hi + 1))
    return [int(part) for part in spec.split(",")]


def _cmd_sweep(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.parallel import run_campaign, sweep_jobs

    try:
        seeds = _parse_seed_spec(args.seeds)
    except ValueError as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 2
    paths = [PATH_UMTS, PATH_ETHERNET] if args.path == "both" else [args.path]
    cache = _make_cache(args)
    try:
        jobs = sweep_jobs(
            args.kind, seeds=seeds, paths=paths, duration=args.duration,
            scenario=args.scenario,
        )
    except (KeyError, ValueError) as exc:
        print(f"sweep: {exc.args[0]}", file=sys.stderr)
        return 2
    campaign = run_campaign(jobs, workers=args.jobs, cache=cache)
    print(f"{args.kind} sweep: {len(seeds)} seed(s) x {len(paths)} path(s), "
          f"{args.duration:.0f}s each")
    for result in campaign.results:
        s = result.stable["summary"]
        print(f"{result.stable['path']:<9} seed={result.stable['seed']:<6} "
              f"bitrate {s['bitrate_kbps']:8.1f} kbit/s   "
              f"loss {s['loss_fraction'] * 100:5.1f}%   "
              f"jitter {s['mean_jitter_s'] * 1000:7.2f} ms   "
              f"RTT {s['mean_rtt_s'] * 1000:7.1f} ms   "
              f"digest {result.stable['digest'][:12]}")
    if args.jsonl is not None:
        lines = [json.dumps(result.stable, sort_keys=True)
                 for result in campaign.results]
        Path(args.jsonl).write_text("\n".join(lines) + "\n")
        print(f"wrote {len(lines)} run(s) to {args.jsonl}")
    print(f"campaign: digest={campaign.digest[:16]} workers={campaign.workers} "
          f"cached={campaign.cached_count()}/{len(jobs)} "
          f"wall={campaign.wall_s:.2f}s")
    _report_cache(args, cache)
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.fleet import FleetSpec, FleetSpecError
    from repro.obs import render_openmetrics
    from repro.parallel import fleet_jobs, run_campaign

    try:
        spec = FleetSpec(
            nodes=args.nodes,
            group_size=args.group_size,
            kind=args.kind,
            duration=args.duration,
            stagger=args.stagger,
            seed=args.seed,
            faults=tuple(args.fault or ()),
            preemption=not args.no_preempt,
            scenarios=tuple(args.scenario or ()),
        )
    except FleetSpecError as exc:
        print(f"fleet: {exc}", file=sys.stderr)
        return 2
    cache = _make_cache(args)
    jobs = fleet_jobs(spec)
    campaign = run_campaign(jobs, workers=args.jobs, cache=cache)
    by_key = campaign.by_key()
    reports = [by_key[job.key].stable for job in jobs]
    if args.check:
        # Determinism proof, as for chaos: re-run the whole campaign
        # fresh (never against the cache) and require per-group digest
        # equality with the first pass.
        recheck = run_campaign(jobs, workers=args.jobs, cache=None).by_key()
        for job, report in zip(jobs, reports):
            report["deterministic"] = (
                recheck[job.key].stable["digest"] == report["digest"]
            )
    failures = 0
    outcomes: dict = {}
    for report in reports:
        ok = (
            report["clean"]
            and report["finished"]
            and report.get("deterministic", True)
        )
        if not ok:
            failures += 1
        for experiment in report["experiments"]:
            outcomes[experiment["outcome"]] = (
                outcomes.get(experiment["outcome"], 0) + 1
            )
        verdict = "ok  " if ok else "FAIL"
        notes = []
        if not report["clean"]:
            notes.append("DIRTY")
        if not report["finished"]:
            notes.append("HUNG")
        if not report.get("deterministic", True):
            notes.append("NON-DETERMINISTIC")
        if report["dead_nodes"]:
            notes.append(f"dead={len(report['dead_nodes'])}")
        print(f"{verdict} g{report['group']:04d} nodes={report['nodes']} "
              f"experiments={len(report['experiments'])} "
              f"jain={report['fairness']['jain_hold_s']:.3f} "
              f"digest={report['digest'][:12]} {' '.join(notes)}".rstrip())
    if args.jsonl is not None:
        lines = [json.dumps(report, sort_keys=True) for report in reports]
        Path(args.jsonl).write_text("\n".join(lines) + "\n")
        print(f"wrote {len(lines)} group report(s) to {args.jsonl}")
    if args.openmetrics is not None:
        _emit_text(
            args.openmetrics,
            render_openmetrics(campaign.metrics),
            "OpenMetrics exposition",
        )
    summary = " ".join(f"{k}={v}" for k, v in sorted(outcomes.items()))
    print(f"fleet: {spec.nodes} node(s) in {len(jobs)} group(s): {summary}")
    print(f"campaign: digest={campaign.digest[:16]} workers={campaign.workers} "
          f"cached={campaign.cached_count()}/{len(jobs)} "
          f"wall={campaign.wall_s:.2f}s")
    _report_cache(args, cache)
    return 1 if failures else 0


def _emit_text(target: str, text: str, label: str) -> None:
    """Write ``text`` to a path, or to stdout when ``target`` is ``-``."""
    from pathlib import Path

    if target == "-":
        sys.stdout.write(text)
    else:
        Path(target).write_text(text)
        print(f"wrote {label} to {target} ({len(text.encode())} bytes)")


def _filtered_snapshot(registry, include_volatile: bool):
    """A registry snapshot with wall-clock families dropped by default."""
    from repro.obs.exporter import is_volatile

    snapshot = registry.snapshot()
    if include_volatile:
        return snapshot
    return {name: data for name, data in snapshot.items() if not is_volatile(name)}


def _report_run(args: argparse.Namespace) -> int:
    """One instrumented bring-up: timeline + profile + metrics."""
    scenario = OneLabScenario(seed=args.seed)
    obs = Observability(scenario.sim)
    obs.bind_node(scenario.napoli)
    events = obs.record_events()
    profiler = obs.enable_profiling()
    umts = scenario.umts_command()
    result = umts.start_blocking()
    if result.ok:
        umts.add_destination_blocking(scenario.inria_addr)
        umts.status_blocking()
        umts.stop_blocking()
    timeline = obs.timeline(events)
    if args.jsonl is not None:
        records = timeline.records()
        records.append({"record": "profile", **profiler.snapshot()})
        records.append({
            "record": "metrics",
            "metrics": _filtered_snapshot(obs.metrics, args.include_volatile),
        })
        lines = [json.dumps(record, sort_keys=True) for record in records]
        _emit_text(args.jsonl, "\n".join(lines) + "\n", "report records")
    if args.openmetrics is not None:
        _emit_text(
            args.openmetrics,
            obs.openmetrics(include_volatile=args.include_volatile),
            "OpenMetrics exposition",
        )
    if args.openmetrics == "-" or args.jsonl == "-":
        return 0 if result.ok else 1
    print(f"run report: seed={args.seed}, {timeline.events_seen} events, "
          f"{scenario.sim.now:.1f} simulated seconds")
    print()
    print("timeline:")
    for line in timeline.report_lines():
        print("  " + line)
    print()
    print("profile:")
    for line in profiler.report_lines():
        print("  " + line)
    print()
    print("metrics:")
    for line in obs.metrics.summary_lines():
        print("  " + line)
    return 0 if result.ok else 1


def _report_campaign(args: argparse.Namespace) -> int:
    """A whole campaign's folded registry, rendered and exported."""
    from repro.obs import render_openmetrics
    from repro.parallel import chaos_jobs, run_campaign, sweep_jobs

    cache = _make_cache(args)
    if args.campaign == "chaos":
        jobs = chaos_jobs()
    else:
        try:
            seeds = _parse_seed_spec(args.seeds)
        except ValueError as exc:
            print(f"report: {exc}", file=sys.stderr)
            return 2
        jobs = sweep_jobs(
            args.kind, seeds=seeds, paths=[PATH_UMTS], duration=args.duration
        )
    campaign = run_campaign(jobs, workers=args.jobs, cache=cache)
    if args.jsonl is not None:
        records = [
            {"record": "job", "key": r.key, "kind": r.kind, "stable": r.stable}
            for r in campaign.results
        ]
        records.append({
            "record": "metrics",
            "metrics": _filtered_snapshot(campaign.metrics, args.include_volatile),
        })
        lines = [json.dumps(record, sort_keys=True) for record in records]
        _emit_text(args.jsonl, "\n".join(lines) + "\n", "report records")
    if args.openmetrics is not None:
        _emit_text(
            args.openmetrics,
            render_openmetrics(
                campaign.metrics, include_volatile=args.include_volatile
            ),
            "OpenMetrics exposition",
        )
    if args.openmetrics != "-" and args.jsonl != "-":
        print(f"{args.campaign} campaign: {len(jobs)} job(s), "
              f"digest={campaign.digest[:16]}, workers={campaign.workers}")
        print("metrics:")
        for line in campaign.metrics.summary_lines():
            print("  " + line)
    _report_cache(args, cache)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.campaign is None:
        return _report_run(args)
    return _report_campaign(args)


def main(argv=None) -> int:
    """Entry point for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="UMTS connectivity for PlanetLab nodes, in simulation.",
    )
    parser.add_argument("--seed", type=int, default=3, help="experiment seed")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("demo", help="umts start/status/stop walk-through")
    trace_parser = sub.add_parser(
        "trace", help="the demo scenario under the observability layer"
    )
    trace_parser.add_argument(
        "--jsonl", default=None, help="export the trace as JSON lines to this path"
    )
    trace_parser.add_argument(
        "--fail",
        action="store_true",
        help="force a dial-up failure to demonstrate the flight recorder",
    )
    trace_parser.add_argument(
        "--last", type=int, default=None, metavar="N",
        help="print only the last N events (bounded ring, O(N) memory)",
    )
    for name, help_text in (
        ("voip", "the VoIP characterization (Figures 1-3)"),
        ("saturation", "the 1 Mbit/s saturation experiment (Figures 4-7)"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--duration", type=float, default=120.0)
    bench_parser = sub.add_parser(
        "bench", help="hot-path benchmarks: run, record baselines, check regressions"
    )
    bench_parser.add_argument(
        "--scenario", action="append", metavar="NAME",
        help="run only this scenario (repeatable; default: all)",
    )
    bench_parser.add_argument(
        "--list", action="store_true", help="list registered scenarios and exit"
    )
    bench_parser.add_argument(
        "--update-baselines", action="store_true",
        help="write fresh BENCH_<scenario>.json baselines under --root",
    )
    bench_parser.add_argument(
        "--check", action="store_true",
        help="compare fresh runs against committed baselines; exit 1 on regression",
    )
    bench_parser.add_argument(
        "--tolerance-scale", type=float, default=1.0, metavar="X",
        help="multiply every scenario tolerance by X (CI uses 3.0)",
    )
    bench_parser.add_argument(
        "--root", default=".", metavar="DIR",
        help="directory holding the BENCH_*.json baselines (default: cwd)",
    )
    bench_parser.add_argument(
        "--output-dir", default=None, metavar="DIR",
        help="also write fresh result files here (CI artifact upload)",
    )
    bench_parser.add_argument(
        "--repeats", type=int, default=None,
        help="override every scenario's timed repeat count",
    )
    bench_parser.add_argument(
        "--warmup", type=int, default=None,
        help="override every scenario's warmup count",
    )
    _add_campaign_args(bench_parser)
    lint_parser = sub.add_parser(
        "lint", help="domain-aware static analysis (determinism, FSM, typing)"
    )
    lint_parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: the repro package)",
    )
    lint_parser.add_argument(
        "--rule", action="append", metavar="RULE",
        help="run only this rule (repeatable; default: all)",
    )
    lint_parser.add_argument(
        "--jsonl", nargs="?", const="-", default=None, metavar="PATH",
        help="emit findings as JSON lines to PATH (default: stdout)",
    )
    lint_parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    _add_campaign_args(lint_parser)
    chaos_parser = sub.add_parser(
        "chaos", help="fault-injection campaign over the dial-up stack"
    )
    chaos_parser.add_argument(
        "--scenario", action="append", metavar="NAME",
        help="run only this scenario (repeatable; default: all)",
    )
    chaos_parser.add_argument(
        "--scenario-grammar", action="store_true",
        help="run the scenario grammar's enumerated points instead of "
             "the built-in fault matrix (--scenario then names grammar "
             "points like climb/fade/visit/tunnel)",
    )
    chaos_parser.add_argument(
        "--list", action="store_true", help="list built-in scenarios and exit"
    )
    chaos_parser.add_argument(
        "--check", action="store_true",
        help="run every scenario twice and require bit-identical digests",
    )
    chaos_parser.add_argument(
        "--jsonl", default=None, metavar="PATH",
        help="write per-scenario reports as JSON lines to PATH",
    )
    _add_campaign_args(chaos_parser)
    sweep_parser = sub.add_parser(
        "sweep", help="seed sweep of a characterization across worker processes"
    )
    sweep_parser.add_argument(
        "--kind", choices=("voip", "cbr"), default="voip",
        help="workload to sweep (default: voip)",
    )
    sweep_parser.add_argument(
        "--seeds", default="1:8", metavar="SPEC",
        help="seed range LO:HI or comma list (default: 1:8)",
    )
    sweep_parser.add_argument(
        "--path", choices=("both", PATH_UMTS, PATH_ETHERNET), default=PATH_UMTS,
        help=f"which path(s) to run (default: {PATH_UMTS})",
    )
    sweep_parser.add_argument("--duration", type=float, default=30.0)
    sweep_parser.add_argument(
        "--scenario", default=None, metavar="POINT",
        help="run over this scenario-grammar point's testbed "
             "(e.g. climb/fade/visit/tunnel)",
    )
    sweep_parser.add_argument(
        "--jsonl", default=None, metavar="PATH",
        help="write per-run records as JSON lines to PATH",
    )
    _add_campaign_args(sweep_parser)
    report_parser = sub.add_parser(
        "report", help="telemetry report: timeline, sim-time profile, OpenMetrics"
    )
    report_parser.add_argument(
        "--campaign", choices=("chaos", "sweep"), default=None,
        help="aggregate a whole campaign instead of one instrumented run",
    )
    report_parser.add_argument(
        "--openmetrics", nargs="?", const="-", default=None, metavar="PATH",
        help="write the metrics registry as OpenMetrics text (default: stdout)",
    )
    report_parser.add_argument(
        "--jsonl", nargs="?", const="-", default=None, metavar="PATH",
        help="write phase/profile/metrics records as JSON lines (default: stdout)",
    )
    report_parser.add_argument(
        "--include-volatile", action="store_true",
        help="keep wall-clock metric families in exports (breaks byte-identity)",
    )
    report_parser.add_argument(
        "--kind", choices=("voip", "cbr"), default="voip",
        help="workload for --campaign sweep (default: voip)",
    )
    report_parser.add_argument(
        "--seeds", default="1:4", metavar="SPEC",
        help="seed range LO:HI or comma list for --campaign sweep (default: 1:4)",
    )
    report_parser.add_argument(
        "--duration", type=float, default=10.0,
        help="simulated seconds per sweep run (default: 10)",
    )
    _add_campaign_args(report_parser)
    fleet_parser = sub.add_parser(
        "fleet", help="fleet-scale campaign: many nodes, leased UMTS, fairness"
    )
    fleet_parser.add_argument(
        "--nodes", type=int, default=100, metavar="N",
        help="fleet size in simulated PlanetLab nodes (default: 100)",
    )
    fleet_parser.add_argument(
        "--group-size", type=int, default=8, metavar="N",
        help="nodes per sharded group simulation (default: 8, max 64)",
    )
    fleet_parser.add_argument(
        "--kind", choices=("voip", "cbr"), default="voip",
        help="workload on every node-pair (default: voip)",
    )
    fleet_parser.add_argument(
        "--duration", type=float, default=4.0,
        help="flow duration in simulated seconds (default: 4)",
    )
    fleet_parser.add_argument(
        "--stagger", type=float, default=10.0, metavar="S",
        help="delay between slice waves, creating the preemption window "
             "(default: 10)",
    )
    fleet_parser.add_argument(
        "--no-preempt", action="store_true",
        help="disable priority preemption (pure FIFO leases)",
    )
    fleet_parser.add_argument(
        "--fault", action="append", metavar="SPEC",
        help="fault spec (repeatable), e.g. fleet:node_kill@t=40,node=2",
    )
    fleet_parser.add_argument(
        "--scenario", action="append", metavar="POINT",
        help="scenario-grammar point assigned round-robin across nodes "
             "(repeatable), e.g. climb/fade/home/local",
    )
    fleet_parser.add_argument(
        "--check", action="store_true",
        help="run the campaign twice and require bit-identical group digests",
    )
    fleet_parser.add_argument(
        "--jsonl", default=None, metavar="PATH",
        help="write per-group reports as JSON lines to PATH",
    )
    fleet_parser.add_argument(
        "--openmetrics", nargs="?", const="-", default=None, metavar="PATH",
        help="write the folded metrics registry as OpenMetrics text "
             "(default: stdout)",
    )
    _add_campaign_args(fleet_parser)
    args = parser.parse_args(argv)
    handlers = {
        "demo": _cmd_demo,
        "trace": _cmd_trace,
        "voip": _cmd_voip,
        "saturation": _cmd_saturation,
        "bench": _cmd_bench,
        "lint": _cmd_lint,
        "chaos": _cmd_chaos,
        "sweep": _cmd_sweep,
        "report": _cmd_report,
        "fleet": _cmd_fleet,
    }
    return handlers[args.command](args)


def _add_campaign_args(parser: argparse.ArgumentParser) -> None:
    """The shared campaign flags: sharding and result caching."""
    parser.add_argument(
        "-j", "--jobs", type=int, default=1, metavar="N",
        help="worker processes (1: in-process; 0: one per CPU)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="skip the content-addressed result cache entirely",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache location (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--cache-stats", action="store_true",
        help="print hit/miss/store counts after the run",
    )


if __name__ == "__main__":
    sys.exit(main())
