"""repro — "Providing UMTS connectivity to PlanetLab nodes", reproduced.

A full simulation of the OneLab UMTS/PlanetLab integration (Botta,
Canonico, Di Stasi, Pescapé, Ventre; ROADS @ CoNEXT 2008): the
PlanetLab node (VServer slices, vsys, VNET+), the iproute2/iptables
data plane, the 3G modems and dial tools, PPP, the UMTS radio access
and core network, a D-ITG-style measurement suite, and — on top — the
paper's ``umts`` command.

Quick start::

    from repro import OneLabScenario, run_characterization, voip_g711

    result = run_characterization(voip_g711(duration=30.0), path="umts")
    print(result.summary)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
figure-by-figure reproduction record.
"""

from repro.core import UmtsCommand
from repro.sim import RandomStreams, Simulator
from repro.testbed import (
    PATH_ETHERNET,
    PATH_UMTS,
    ExperimentResult,
    Internet,
    OneLabScenario,
    PlanetLabNode,
    run_characterization,
    run_repetitions,
)
from repro.traffic import ItgDecoder, ItgReceiver, ItgSender, cbr, voip_g711
from repro.umts import commercial_operator, private_microcell

__version__ = "1.0.0"

__all__ = [
    "ExperimentResult",
    "Internet",
    "ItgDecoder",
    "ItgReceiver",
    "ItgSender",
    "OneLabScenario",
    "PATH_ETHERNET",
    "PATH_UMTS",
    "PlanetLabNode",
    "RandomStreams",
    "Simulator",
    "UmtsCommand",
    "__version__",
    "cbr",
    "commercial_operator",
    "private_microcell",
    "run_characterization",
    "run_repetitions",
    "voip_g711",
]
