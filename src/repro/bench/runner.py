"""The benchmark runner: warmup, repeated timed runs, robust stats.

A :class:`Scenario` knows how to execute one timed iteration of a hot
path; :func:`run_scenario` executes ``warmup`` untimed iterations then
``repeats`` timed ones and returns a :class:`BenchResult` with the
min/median/stdev of the per-iteration wall times.  Everything else —
baseline persistence, regression comparison, the CLI — is built on
these two types, and the pytest figure benches reuse
:func:`time_once` so both report through one code path.
"""

from __future__ import annotations

import statistics
import time
from typing import Any, Callable, Dict, List, Optional, Tuple


def time_once(fn: Callable[[], Any]) -> Tuple[float, Any]:
    """Run ``fn`` once under ``perf_counter``; return (seconds, value)."""
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


class Scenario:
    """One registered hot-path benchmark.

    ``run_once`` must return the wall seconds of a single iteration;
    scenarios time the interesting region themselves (via
    :func:`time_once`) so per-iteration setup stays out of the
    measurement.  ``tolerance`` is the fractional median slow-down the
    comparator accepts before declaring a regression (CI multiplies it
    by ``--tolerance-scale``).  ``reference_median_s`` optionally pins
    the median measured on the code *before* the optimization pass this
    subsystem shipped with, so baselines record the achieved speedup.
    ``units`` optionally names what one iteration processes — a
    ``(unit, count)`` pair such as ``("events", 134400)`` — so reports
    and baselines can state throughput (count/median) alongside wall
    time.
    """

    def __init__(
        self,
        name: str,
        description: str,
        run_once: Callable[[], float],
        repeats: int = 5,
        warmup: int = 1,
        tolerance: float = 0.35,
        reference_median_s: Optional[float] = None,
        units: Optional[Tuple[str, int]] = None,
    ):
        self.name = name
        self.description = description
        self._run_once = run_once
        self.repeats = repeats
        self.warmup = warmup
        self.tolerance = tolerance
        self.reference_median_s = reference_median_s
        self.units = units

    def rate_per_s(self, median_s: float) -> Optional[float]:
        """Units processed per wall second at ``median_s``, if unitful."""
        if self.units is None or median_s <= 0:
            return None
        return self.units[1] / median_s

    def run_once(self) -> float:
        """One timed iteration; returns wall seconds."""
        return self._run_once()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Scenario {self.name!r} repeats={self.repeats} warmup={self.warmup}>"


class BenchResult:
    """Per-iteration wall times of one scenario run, plus stats."""

    def __init__(self, name: str, times: List[float], warmup: int):
        if not times:
            raise ValueError("a bench result needs at least one timed run")
        self.name = name
        self.times = list(times)
        self.warmup = warmup

    @property
    def repeats(self) -> int:
        """Number of timed iterations."""
        return len(self.times)

    @property
    def median_s(self) -> float:
        """Median wall seconds — the comparator's headline statistic."""
        return statistics.median(self.times)

    @property
    def min_s(self) -> float:
        """Fastest iteration (least-noise estimate)."""
        return min(self.times)

    @property
    def mean_s(self) -> float:
        """Arithmetic mean of the iterations."""
        return statistics.fmean(self.times)

    @property
    def stdev_s(self) -> float:
        """Sample standard deviation; 0.0 with a single iteration."""
        if len(self.times) < 2:
            return 0.0
        return statistics.stdev(self.times)

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-facing representation (used by the baseline files)."""
        return {
            "name": self.name,
            "repeats": self.repeats,
            "warmup": self.warmup,
            "times_s": self.times,
            "median_s": self.median_s,
            "min_s": self.min_s,
            "mean_s": self.mean_s,
            "stdev_s": self.stdev_s,
        }

    def summary_line(self) -> str:
        """One aligned human-readable report row."""
        return (
            f"{self.name:<24} median {self.median_s * 1000:9.3f} ms   "
            f"min {self.min_s * 1000:9.3f} ms   "
            f"stdev {self.stdev_s * 1000:8.3f} ms   (n={self.repeats})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<BenchResult {self.name!r} median={self.median_s:.6f}s n={self.repeats}>"


def run_scenario(
    scenario: Scenario,
    repeats: Optional[int] = None,
    warmup: Optional[int] = None,
) -> BenchResult:
    """Execute a scenario: warmup iterations, then timed repeats."""
    n_warmup = scenario.warmup if warmup is None else warmup
    n_repeats = scenario.repeats if repeats is None else repeats
    if n_repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {n_repeats!r}")
    for _ in range(n_warmup):
        scenario.run_once()
    times = [scenario.run_once() for _ in range(n_repeats)]
    return BenchResult(scenario.name, times, n_warmup)
