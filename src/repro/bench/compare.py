"""The regression comparator: fresh run vs. committed baseline.

A scenario *regresses* when its fresh median exceeds the baseline
median by more than the scenario's tolerance (scaled by the CI's
``--tolerance-scale``, since shared runners are noisier than the
machine the baselines were recorded on).  Medians at or below the
baseline always pass — getting faster is never a failure.
"""

from __future__ import annotations

from typing import Any, Dict, NamedTuple

from repro.bench.runner import BenchResult


class Comparison(NamedTuple):
    """Verdict for one scenario."""

    scenario: str
    baseline_median_s: float
    fresh_median_s: float
    ratio: float
    tolerance: float
    scale: float
    regressed: bool

    @property
    def allowed_ratio(self) -> float:
        """The largest fresh/baseline ratio that still passes."""
        return 1.0 + self.tolerance * self.scale

    def verdict_line(self) -> str:
        """One aligned PASS/REGRESS report row."""
        verdict = "REGRESS" if self.regressed else "PASS"
        return (
            f"{verdict:<8} {self.scenario:<24} "
            f"baseline {self.baseline_median_s * 1000:9.3f} ms   "
            f"fresh {self.fresh_median_s * 1000:9.3f} ms   "
            f"ratio {self.ratio:5.2f} (allowed {self.allowed_ratio:.2f})"
        )


def compare_result(
    baseline: Dict[str, Any],
    fresh: BenchResult,
    tolerance: float,
    scale: float = 1.0,
) -> Comparison:
    """Compare a fresh result against a loaded baseline document."""
    if scale <= 0:
        raise ValueError(f"tolerance scale must be positive, got {scale!r}")
    baseline_median = float(baseline["result"]["median_s"])
    if baseline_median <= 0:
        raise ValueError(f"baseline median must be positive, got {baseline_median!r}")
    ratio = fresh.median_s / baseline_median
    return Comparison(
        scenario=fresh.name,
        baseline_median_s=baseline_median,
        fresh_median_s=fresh.median_s,
        ratio=ratio,
        tolerance=tolerance,
        scale=scale,
        regressed=ratio > 1.0 + tolerance * scale,
    )
