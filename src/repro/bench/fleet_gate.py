"""The CI fleet gate: events/sec regression check plus delta artifact.

``repro bench --check`` already gates every scenario's median against
its committed baseline.  This module adds the fleet-specific CI step:
compare a fresh ``BENCH_fleet.json`` (written by ``repro bench
--output-dir``) against the committed one, write a
``BENCH_fleet_delta.json`` document next to the fresh results (uploaded
with the bench artifact), and exit non-zero when the 256-node group's
events/sec throughput regressed beyond the scenario tolerance.

Run as ``python -m repro.bench.fleet_gate --fresh bench-fresh``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.bench.baseline import FLEET_SCENARIOS, baseline_path, load_baseline


def fleet_delta(
    committed: Dict[str, Any],
    fresh: Dict[str, Any],
    tolerance_scale: float = 1.0,
) -> Dict[str, Any]:
    """Per-scenario throughput deltas between two fleet gate documents.

    A scenario regresses when its fresh median exceeds the committed
    one by more than its (scaled) tolerance — the same criterion the
    generic comparator applies, restated in rate terms so the artifact
    reads as events/sec and datacalls/sec.
    """
    if tolerance_scale <= 0:
        raise ValueError(f"tolerance scale must be positive, got {tolerance_scale!r}")
    deltas: Dict[str, Any] = {}
    for name in FLEET_SCENARIOS:
        base = committed["scenarios"][name]
        new = fresh["scenarios"][name]
        tolerance = base["tolerance"] * tolerance_scale
        median_ratio = new["median_s"] / base["median_s"]
        deltas[name] = {
            "unit": base.get("unit"),
            "committed_rate_per_s": base.get("rate_per_s"),
            "fresh_rate_per_s": new.get("rate_per_s"),
            "committed_median_s": base["median_s"],
            "fresh_median_s": new["median_s"],
            "median_ratio": median_ratio,
            "tolerance": tolerance,
            "regressed": median_ratio > 1.0 + tolerance,
        }
    return {
        "schema": 1,
        "scenario": "fleet_delta",
        "description": "fresh fleet throughput vs the committed BENCH_fleet.json",
        "deltas": deltas,
        "fresh_gate": fresh.get("gate"),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.fleet_gate", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--fresh", required=True, metavar="DIR",
        help="directory holding the freshly measured BENCH_fleet.json",
    )
    parser.add_argument(
        "--root", default=".", metavar="DIR",
        help="directory holding the committed baselines (default: cwd)",
    )
    parser.add_argument(
        "--tolerance-scale", type=float, default=1.0, metavar="X",
        help="multiply each scenario's tolerance by X (CI uses 3.0)",
    )
    args = parser.parse_args(argv)
    committed = load_baseline(baseline_path("fleet", args.root))
    fresh = load_baseline(baseline_path("fleet", args.fresh))
    if committed is None or fresh is None:
        missing = args.root if committed is None else args.fresh
        print(f"fleet gate: no BENCH_fleet.json under {missing}", file=sys.stderr)
        return 2
    delta = fleet_delta(committed, fresh, tolerance_scale=args.tolerance_scale)
    out = Path(args.fresh) / "BENCH_fleet_delta.json"
    out.write_text(json.dumps(delta, indent=2) + "\n")
    failures = 0
    for name, entry in delta["deltas"].items():
        unit = entry["unit"] or "iterations"
        verdict = "REGRESS" if entry["regressed"] else "ok"
        rate = entry["fresh_rate_per_s"]
        base_rate = entry["committed_rate_per_s"]
        rate_note = (
            f"{rate:,.0f} {unit}/s vs committed {base_rate:,.0f}"
            if rate is not None and base_rate is not None
            else f"median x{entry['median_ratio']:.2f}"
        )
        print(f"{verdict:<8} {name:<18} {rate_note}  "
              f"(median x{entry['median_ratio']:.2f}, "
              f"tolerance +{entry['tolerance']:.0%})")
        if entry["regressed"]:
            failures += 1
    print(f"fleet gate: wrote {out}")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
