"""The scenario registry: what ``repro bench`` knows how to measure.

Nine hot paths, mirroring where the reproduction actually spends its
time (ISSUE: every packet of the §3.1 experiments is a handful of
engine events plus a PPP codec pass):

- ``engine`` — schedule-and-drain throughput of the
  discrete-event core over distinct timestamps;
- ``engine_cancel`` — timer-churn: most scheduled events are cancelled
  before they fire (the DNS/dial/retransmit timer pattern);
- ``engine_burst`` — heavy same-timestamp contention: many events
  share few distinct instants (TTI-aligned radio bursts);
- ``fleet_events`` — the shared-kernel scenario: one simulator
  interleaving a whole fleet group of staggered VoIP/CBR datacall
  event chains with TTI-aligned deliveries and per-packet ack timers;
- ``fleet_datacalls`` — a real 16-node :mod:`repro.fleet` group
  (modem/vsys/PPP stacks, controller arbitration, D-ITG flows) run to
  quiescence, measuring completed datacalls per wall second;
- ``hdlc_encode`` / ``hdlc_decode`` — the RFC 1662 byte codec over
  MTU-sized random payloads;
- ``voip_characterization`` / ``cbr_characterization`` — the full
  120 s Figures 1–3 / 4–7 runs on both paths (UMTS and Ethernet);
- ``vsys_rpc`` — ``umts status`` round-trips through the vsys FIFO
  pair on a dialed-up node.

``reference_median_s`` values were measured on this machine on the
code as of commit 58e56cb for the PR-2 scenarios (the state *before*
the tuple-heap fast path) and on commit 1c63ce2 for the kernel
scenarios (the tuple-heap engine *before* the shared-kernel rewrite),
so every baseline file records the achieved speedup.  The
characterization helpers here are also what ``benchmarks/conftest.py``
uses for its session fixtures — pytest benches and ``repro bench`` run
the exact same code.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List

from repro.bench.runner import Scenario, time_once
from repro.ppp.hdlc import hdlc_decode, hdlc_encode

#: Seed and duration of the headline characterization runs (§3.1).
BENCH_SEED = 3
BENCH_DURATION = 120.0

#: Events per engine-microbench iteration.
ENGINE_EVENTS = 50_000

#: Events per cancellation-heavy iteration (80% are cancelled).
CANCEL_EVENTS = 50_000

#: Events / distinct timestamps per same-timestamp-burst iteration.
BURST_EVENTS = 50_000
BURST_SLOTS = 100

#: The shared-kernel fleet scenario: one simulator interleaving a whole
#: group's datacall timelines.  Half the nodes replay the paper's VoIP
#: cadence (20 ms G.711 frames), half the 1 Mbit/s CBR cadence (8 ms);
#: each node's packet-arrival trace is pre-scheduled the way the
#: traffic decoder replays a characterized flow, with starts staggered
#: across uplink access slots.  Each packet dispatch posts a radio
#: delivery snapped to the group-wide 10 ms TTI boundary (the
#: same-timestamp batches a cellular kernel dispatches) and arms a
#: retransmit timer the delivery cancels (the timer-churn pattern).
#: As in a real UMTS MAC, *all* timestamps are integer frame counters
#: times the grid tick, so equal instants are equal floats across
#: every node and coalesce into shared kernel batches.
FLEET_BENCH_NODES = 256
FLEET_BENCH_DURATION = 2.0
FLEET_BENCH_GRID = 1e-4  # 0.1 ms scheduling-grant grid tick
FLEET_BENCH_RASTER = 10  # 1 ms uplink access-slot raster, in grid frames
FLEET_BENCH_TTI_FRAMES = 100  # 10 ms TTI, in grid frames
FLEET_BENCH_RETX_FRAMES = 2500  # 0.25 s retransmit guard, in grid frames
FLEET_BENCH_VOIP_FRAMES = 200  # 20 ms VoIP cadence, in grid frames
FLEET_BENCH_CBR_FRAMES = 80  # 8 ms CBR cadence, in grid frames

#: Packets per node per iteration, by workload kind.
FLEET_BENCH_VOIP_PACKETS = int(
    FLEET_BENCH_DURATION / (FLEET_BENCH_VOIP_FRAMES * FLEET_BENCH_GRID)
)
FLEET_BENCH_CBR_PACKETS = int(
    FLEET_BENCH_DURATION / (FLEET_BENCH_CBR_FRAMES * FLEET_BENCH_GRID)
)

#: Scheduled events per ``fleet_events`` iteration: every packet is a
#: packet event + a delivery event + a cancelled retransmit timer.
FLEET_BENCH_EVENTS = FLEET_BENCH_NODES // 2 * 3 * (
    FLEET_BENCH_VOIP_PACKETS + FLEET_BENCH_CBR_PACKETS
)

#: The real-stack datacall scenario: one 16-node fleet group.
FLEET_BENCH_GROUP_NODES = 16
#: Completed datacalls per iteration: 8 node-pairs x 2 slices.
FLEET_BENCH_DATACALLS = 16

#: HDLC corpus: MTU-sized uniformly random payloads (worst-case escape
#: density ~13%), regenerated identically from a fixed seed.
HDLC_PAYLOADS = 20
HDLC_PAYLOAD_SIZE = 1500

#: ``umts status`` round-trips per vsys iteration.
VSYS_CALLS = 50


def _engine_once() -> float:
    from repro.sim.engine import Simulator

    sim = Simulator()
    count = [0]

    def bump() -> None:
        count[0] += 1

    def schedule_and_drain() -> None:
        for i in range(ENGINE_EVENTS):
            sim.schedule(i * 1e-6, bump)
        sim.run()

    elapsed, _ = time_once(schedule_and_drain)
    if count[0] != ENGINE_EVENTS:
        raise RuntimeError(f"engine dropped events: {count[0]} != {ENGINE_EVENTS}")
    return elapsed


def _engine_cancel_once() -> float:
    """Timer churn: 80% of scheduled events are cancelled before firing."""
    from repro.sim.engine import Simulator

    sim = Simulator()
    count = [0]

    def bump() -> None:
        count[0] += 1

    def churn_and_drain() -> None:
        handles = [
            sim.schedule(1.0 + i * 1e-6, bump) for i in range(CANCEL_EVENTS)
        ]
        for i, handle in enumerate(handles):
            if i % 5 != 0:
                handle.cancel()
        sim.run()

    elapsed, _ = time_once(churn_and_drain)
    expected = (CANCEL_EVENTS + 4) // 5
    if count[0] != expected:
        raise RuntimeError(f"cancel bench fired {count[0]} != {expected}")
    return elapsed


def _engine_burst_once() -> float:
    """Same-timestamp contention: many events on few distinct instants."""
    from repro.sim.engine import Simulator

    sim = Simulator()
    count = [0]

    def bump() -> None:
        count[0] += 1

    def schedule_and_drain() -> None:
        for i in range(BURST_EVENTS):
            sim.schedule(1.0 + (i % BURST_SLOTS) * 0.01, bump)
        sim.run()

    elapsed, _ = time_once(schedule_and_drain)
    if count[0] != BURST_EVENTS:
        raise RuntimeError(f"burst bench fired {count[0]} != {BURST_EVENTS}")
    return elapsed


def _fleet_events_once(engine_factory: Any = None) -> float:
    """One kernel interleaving a 256-node group's datacall timelines.

    Every node replays its packet-arrival trace at its workload cadence
    on the MAC's integer frame grid, pre-scheduled the way the traffic
    decoder replays a characterized flow, with starts staggered across
    1 ms uplink access slots.  Each packet dispatch posts a radio
    delivery snapped to the group-wide 10 ms TTI boundary (so
    deliveries from many nodes share exact timestamps — the
    same-timestamp batches the kernel dispatches together) and arms a
    retransmit timer that the delivery cancels, exercising the
    cancellation path at fleet volume.

    ``engine_factory`` lets the pre-PR reference run and the old-vs-new
    equivalence tests drive the identical scenario through the legacy
    tuple-heap engine: fire-and-forget sites use ``post_at`` when the
    engine offers it and otherwise fall back to ``schedule_at`` with
    the handle discarded — exactly what pre-kernel call sites did.
    """
    if engine_factory is None:
        from repro.sim.engine import Simulator as engine_factory  # noqa: N813

    sim = engine_factory()
    post_at = getattr(sim, "post_at", None) or sim.schedule_at
    schedule_at = sim.schedule_at
    grid = FLEET_BENCH_GRID
    tti = FLEET_BENCH_TTI_FRAMES
    retx = FLEET_BENCH_RETX_FRAMES
    sent = [0]
    delivered = [0]

    def _retransmit() -> None:
        raise RuntimeError("fleet bench: a retransmit timer escaped its cancel")

    def deliver(timer: Any) -> None:
        timer.cancel()
        delivered[0] += 1

    def send(frame: int) -> None:
        sent[0] += 1
        tti_frame = frame - frame % tti + tti  # next TTI boundary
        timer = schedule_at((tti_frame + retx) * grid, _retransmit)
        post_at(tti_frame * grid, deliver, timer)

    def build_and_drain() -> None:
        for i in range(FLEET_BENCH_NODES):
            if i % 2 == 0:
                period, packets = FLEET_BENCH_VOIP_FRAMES, FLEET_BENCH_VOIP_PACKETS
            else:
                period, packets = FLEET_BENCH_CBR_FRAMES, FLEET_BENCH_CBR_PACKETS
            start = i * FLEET_BENCH_RASTER
            for frame in range(start, start + packets * period, period):
                post_at(frame * grid, send, frame)
        sim.run()

    elapsed, _ = time_once(build_and_drain)
    expected = FLEET_BENCH_EVENTS // 3
    if sent[0] != expected or delivered[0] != expected:
        raise RuntimeError(
            f"fleet bench dropped packets: sent {sent[0]}, "
            f"delivered {delivered[0]}, expected {expected}"
        )
    return elapsed


def _fleet_datacalls_once() -> float:
    """A real 16-node fleet group run to quiescence (full stacks)."""
    from repro.fleet.campaign import run_group
    from repro.fleet.spec import FleetSpec

    spec = FleetSpec(
        nodes=FLEET_BENCH_GROUP_NODES,
        group_size=FLEET_BENCH_GROUP_NODES,
        duration=1.0,
        stagger=4.0,
        drain=1.0,
        seed=BENCH_SEED,
    )
    elapsed, report = time_once(lambda: run_group(spec, 0))
    completed = sum(
        1 for record in report["experiments"] if record["outcome"] == "completed"
    )
    if completed != FLEET_BENCH_DATACALLS or not report["clean"]:
        raise RuntimeError(
            f"fleet datacall bench: {completed}/{FLEET_BENCH_DATACALLS} "
            f"completed, clean={report['clean']}"
        )
    return elapsed


def _hdlc_corpus() -> List[bytes]:
    # lint: allow(direct-rng) -- fixed-seed corpus generator, not simulation state
    rng = random.Random(42)
    return [
        bytes(rng.randrange(256) for _ in range(HDLC_PAYLOAD_SIZE))
        for _ in range(HDLC_PAYLOADS)
    ]


def _hdlc_encode_once() -> float:
    payloads = _hdlc_corpus()
    elapsed, _ = time_once(lambda: [hdlc_encode(p) for p in payloads])
    return elapsed


def _hdlc_decode_once() -> float:
    frames = [hdlc_encode(p) for p in _hdlc_corpus()]
    decoded, _ = time_once(lambda: [hdlc_decode(f) for f in frames])
    return decoded


def characterization_pair(kind: str, seed: int = BENCH_SEED,
                          duration: float = BENCH_DURATION) -> Dict[str, object]:
    """Run one workload on both paths; the figure fixtures use this too."""
    from repro import (
        PATH_ETHERNET,
        PATH_UMTS,
        cbr,
        run_characterization,
        voip_g711,
    )

    spec_fn = {"voip": voip_g711, "cbr": cbr}[kind]
    return {
        path: run_characterization(spec_fn(duration=duration), path=path, seed=seed)
        for path in (PATH_UMTS, PATH_ETHERNET)
    }


def _characterization_once(kind: str) -> float:
    elapsed, _ = time_once(lambda: characterization_pair(kind))
    return elapsed


def _vsys_rpc_once() -> float:
    from repro import OneLabScenario

    scenario = OneLabScenario(seed=BENCH_SEED)
    umts = scenario.umts_command()
    started = umts.start_blocking()
    if not started.ok:
        raise RuntimeError(f"umts start failed: {started.text}")

    def round_trips() -> None:
        for _ in range(VSYS_CALLS):
            status = umts.status_blocking()
            if not status.ok:
                raise RuntimeError(f"umts status failed: {status.text}")

    elapsed, _ = time_once(round_trips)
    umts.stop_blocking()
    return elapsed


#: Pre-optimization medians (seconds) measured on the reference machine
#: — at commit 58e56cb for the PR-2 scenarios, at commit 1c63ce2 (the
#: tuple-heap engine, before the shared-kernel rewrite) for the kernel
#: scenarios; ``None`` means no pre-PR measurement exists.  The
#: ``fleet_events`` reference drives the *identical* scenario through
#: the preserved legacy engine (``tests/sim/legacy_engine.py``) via
#: the ``engine_factory`` parameter, so the kernel speedup is
#: apples-to-apples on the same workload.
PRE_PR_MEDIANS = {
    "engine": 0.16794382800026142,
    "engine_cancel": 0.08550841599935666,
    "engine_burst": 0.10733355400043365,
    "fleet_events": 0.2646506060009415,
    "fleet_datacalls": 0.34039395800027705,
    "hdlc_encode": 0.020126201000039146,
    "hdlc_decode": 0.02009486899987678,
    "voip_characterization": 3.120827836999979,
    "cbr_characterization": 2.361335259000043,
    "vsys_rpc": 0.0019871969998348504,
}


def build_registry() -> Dict[str, Scenario]:
    """Construct the ordered name → :class:`Scenario` registry."""
    scenarios = [
        Scenario(
            "engine",
            f"schedule+drain {ENGINE_EVENTS} events through Simulator.run",
            _engine_once,
            repeats=5,
            warmup=1,
            tolerance=0.35,
            reference_median_s=PRE_PR_MEDIANS["engine"],
        ),
        Scenario(
            "engine_cancel",
            f"schedule {CANCEL_EVENTS} events, cancel 80%, drain the rest",
            _engine_cancel_once,
            repeats=5,
            warmup=1,
            tolerance=0.35,
            reference_median_s=PRE_PR_MEDIANS["engine_cancel"],
            units=("events", CANCEL_EVENTS),
        ),
        Scenario(
            "engine_burst",
            f"drain {BURST_EVENTS} events sharing {BURST_SLOTS} timestamps",
            _engine_burst_once,
            repeats=5,
            warmup=1,
            tolerance=0.35,
            reference_median_s=PRE_PR_MEDIANS["engine_burst"],
            units=("events", BURST_EVENTS),
        ),
        Scenario(
            "fleet_events",
            f"one kernel, {FLEET_BENCH_NODES}-node group: staggered VoIP/CBR "
            f"chains, TTI-batched deliveries, cancelled ack timers",
            _fleet_events_once,
            repeats=5,
            warmup=1,
            tolerance=0.35,
            reference_median_s=PRE_PR_MEDIANS["fleet_events"],
            units=("events", FLEET_BENCH_EVENTS),
        ),
        Scenario(
            "fleet_datacalls",
            f"one real {FLEET_BENCH_GROUP_NODES}-node fleet group "
            f"({FLEET_BENCH_DATACALLS} datacalls) run to quiescence",
            _fleet_datacalls_once,
            repeats=3,
            warmup=1,
            tolerance=0.5,
            reference_median_s=PRE_PR_MEDIANS["fleet_datacalls"],
            units=("datacalls", FLEET_BENCH_DATACALLS),
        ),
        Scenario(
            "hdlc_encode",
            f"HDLC-encode {HDLC_PAYLOADS} random {HDLC_PAYLOAD_SIZE}-byte payloads",
            _hdlc_encode_once,
            repeats=5,
            warmup=1,
            tolerance=0.5,
            reference_median_s=PRE_PR_MEDIANS["hdlc_encode"],
        ),
        Scenario(
            "hdlc_decode",
            f"HDLC-decode the same {HDLC_PAYLOADS}-frame corpus",
            _hdlc_decode_once,
            repeats=5,
            warmup=1,
            tolerance=0.5,
            reference_median_s=PRE_PR_MEDIANS["hdlc_decode"],
        ),
        Scenario(
            "voip_characterization",
            f"full {BENCH_DURATION:.0f}s VoIP run on both paths (Figures 1-3)",
            lambda: _characterization_once("voip"),
            repeats=3,
            warmup=0,
            tolerance=0.5,
            reference_median_s=PRE_PR_MEDIANS["voip_characterization"],
        ),
        Scenario(
            "cbr_characterization",
            f"full {BENCH_DURATION:.0f}s 1 Mbit/s CBR run on both paths (Figures 4-7)",
            lambda: _characterization_once("cbr"),
            repeats=3,
            warmup=0,
            tolerance=0.5,
            reference_median_s=PRE_PR_MEDIANS["cbr_characterization"],
        ),
        Scenario(
            "vsys_rpc",
            f"{VSYS_CALLS} 'umts status' round-trips through the vsys FIFOs",
            _vsys_rpc_once,
            repeats=3,
            warmup=1,
            tolerance=0.5,
            reference_median_s=PRE_PR_MEDIANS["vsys_rpc"],
        ),
    ]
    return {scenario.name: scenario for scenario in scenarios}


#: The default registry used by the CLI and tests.
REGISTRY: Dict[str, Scenario] = build_registry()
