"""The scenario registry: what ``repro bench`` knows how to measure.

Five hot paths, mirroring where the reproduction actually spends its
time (ISSUE: every packet of the §3.1 experiments is a handful of
engine events plus a PPP codec pass):

- ``engine`` — schedule-and-drain throughput of the
  discrete-event core;
- ``hdlc_encode`` / ``hdlc_decode`` — the RFC 1662 byte codec over
  MTU-sized random payloads;
- ``voip_characterization`` / ``cbr_characterization`` — the full
  120 s Figures 1–3 / 4–7 runs on both paths (UMTS and Ethernet);
- ``vsys_rpc`` — ``umts status`` round-trips through the vsys FIFO
  pair on a dialed-up node.

``reference_median_s`` values were measured on this machine on the
code as of commit 58e56cb (the state *before* the optimization pass
that shipped with this subsystem), so every baseline file records the
achieved speedup.  The characterization helpers here are also what
``benchmarks/conftest.py`` uses for its session fixtures — pytest
benches and ``repro bench`` run the exact same code.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.bench.runner import Scenario, time_once
from repro.ppp.hdlc import hdlc_decode, hdlc_encode

#: Seed and duration of the headline characterization runs (§3.1).
BENCH_SEED = 3
BENCH_DURATION = 120.0

#: Events per engine-microbench iteration.
ENGINE_EVENTS = 50_000

#: HDLC corpus: MTU-sized uniformly random payloads (worst-case escape
#: density ~13%), regenerated identically from a fixed seed.
HDLC_PAYLOADS = 20
HDLC_PAYLOAD_SIZE = 1500

#: ``umts status`` round-trips per vsys iteration.
VSYS_CALLS = 50


def _engine_once() -> float:
    from repro.sim.engine import Simulator

    sim = Simulator()
    count = [0]

    def bump() -> None:
        count[0] += 1

    def schedule_and_drain() -> None:
        for i in range(ENGINE_EVENTS):
            sim.schedule(i * 1e-6, bump)
        sim.run()

    elapsed, _ = time_once(schedule_and_drain)
    if count[0] != ENGINE_EVENTS:
        raise RuntimeError(f"engine dropped events: {count[0]} != {ENGINE_EVENTS}")
    return elapsed


def _hdlc_corpus() -> List[bytes]:
    # lint: allow(direct-rng) -- fixed-seed corpus generator, not simulation state
    rng = random.Random(42)
    return [
        bytes(rng.randrange(256) for _ in range(HDLC_PAYLOAD_SIZE))
        for _ in range(HDLC_PAYLOADS)
    ]


def _hdlc_encode_once() -> float:
    payloads = _hdlc_corpus()
    elapsed, _ = time_once(lambda: [hdlc_encode(p) for p in payloads])
    return elapsed


def _hdlc_decode_once() -> float:
    frames = [hdlc_encode(p) for p in _hdlc_corpus()]
    decoded, _ = time_once(lambda: [hdlc_decode(f) for f in frames])
    return decoded


def characterization_pair(kind: str, seed: int = BENCH_SEED,
                          duration: float = BENCH_DURATION) -> Dict[str, object]:
    """Run one workload on both paths; the figure fixtures use this too."""
    from repro import (
        PATH_ETHERNET,
        PATH_UMTS,
        cbr,
        run_characterization,
        voip_g711,
    )

    spec_fn = {"voip": voip_g711, "cbr": cbr}[kind]
    return {
        path: run_characterization(spec_fn(duration=duration), path=path, seed=seed)
        for path in (PATH_UMTS, PATH_ETHERNET)
    }


def _characterization_once(kind: str) -> float:
    elapsed, _ = time_once(lambda: characterization_pair(kind))
    return elapsed


def _vsys_rpc_once() -> float:
    from repro import OneLabScenario

    scenario = OneLabScenario(seed=BENCH_SEED)
    umts = scenario.umts_command()
    started = umts.start_blocking()
    if not started.ok:
        raise RuntimeError(f"umts start failed: {started.text}")

    def round_trips() -> None:
        for _ in range(VSYS_CALLS):
            status = umts.status_blocking()
            if not status.ok:
                raise RuntimeError(f"umts status failed: {status.text}")

    elapsed, _ = time_once(round_trips)
    umts.stop_blocking()
    return elapsed


#: Pre-optimization medians (seconds) measured on the reference machine
#: at commit 58e56cb; ``None`` means no pre-PR measurement exists.
PRE_PR_MEDIANS = {
    "engine": 0.16794382800026142,
    "hdlc_encode": 0.020126201000039146,
    "hdlc_decode": 0.02009486899987678,
    "voip_characterization": 3.120827836999979,
    "cbr_characterization": 2.361335259000043,
    "vsys_rpc": 0.0019871969998348504,
}


def build_registry() -> Dict[str, Scenario]:
    """Construct the ordered name → :class:`Scenario` registry."""
    scenarios = [
        Scenario(
            "engine",
            f"schedule+drain {ENGINE_EVENTS} events through Simulator.run",
            _engine_once,
            repeats=5,
            warmup=1,
            tolerance=0.35,
            reference_median_s=PRE_PR_MEDIANS["engine"],
        ),
        Scenario(
            "hdlc_encode",
            f"HDLC-encode {HDLC_PAYLOADS} random {HDLC_PAYLOAD_SIZE}-byte payloads",
            _hdlc_encode_once,
            repeats=5,
            warmup=1,
            tolerance=0.5,
            reference_median_s=PRE_PR_MEDIANS["hdlc_encode"],
        ),
        Scenario(
            "hdlc_decode",
            f"HDLC-decode the same {HDLC_PAYLOADS}-frame corpus",
            _hdlc_decode_once,
            repeats=5,
            warmup=1,
            tolerance=0.5,
            reference_median_s=PRE_PR_MEDIANS["hdlc_decode"],
        ),
        Scenario(
            "voip_characterization",
            f"full {BENCH_DURATION:.0f}s VoIP run on both paths (Figures 1-3)",
            lambda: _characterization_once("voip"),
            repeats=3,
            warmup=0,
            tolerance=0.5,
            reference_median_s=PRE_PR_MEDIANS["voip_characterization"],
        ),
        Scenario(
            "cbr_characterization",
            f"full {BENCH_DURATION:.0f}s 1 Mbit/s CBR run on both paths (Figures 4-7)",
            lambda: _characterization_once("cbr"),
            repeats=3,
            warmup=0,
            tolerance=0.5,
            reference_median_s=PRE_PR_MEDIANS["cbr_characterization"],
        ),
        Scenario(
            "vsys_rpc",
            f"{VSYS_CALLS} 'umts status' round-trips through the vsys FIFOs",
            _vsys_rpc_once,
            repeats=3,
            warmup=1,
            tolerance=0.5,
            reference_median_s=PRE_PR_MEDIANS["vsys_rpc"],
        ),
    ]
    return {scenario.name: scenario for scenario in scenarios}


#: The default registry used by the CLI and tests.
REGISTRY: Dict[str, Scenario] = build_registry()
