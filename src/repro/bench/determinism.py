"""Stable digests of simulated outputs.

The optimization passes this subsystem gates (engine fast path, HDLC
tables, RNG samplers) must never change *what* the simulation
computes, only how fast.  :func:`run_digest` folds everything a
characterization run produces — the sender/receiver packet logs, the
RTT records, the end-of-run summary, all four figure series, and the
RAB grade history — into one SHA-256, so "bit-identical results" is a
single string comparison.  ``repr`` of Python floats is
shortest-round-trip and therefore stable across platforms and the
CPython versions CI runs.
"""

from __future__ import annotations

import hashlib
from typing import Any


def run_digest(result: Any) -> str:
    """SHA-256 over every observable output of one characterization run."""
    h = hashlib.sha256()
    log = result.sender.log
    for record in log.sent:
        h.update(repr(tuple(record)).encode())
    for record in log.rtt:
        h.update(repr(tuple(record)).encode())
    receiver_log = result.receiver.log_for(log.flow_id)
    for record in receiver_log.received:
        h.update(repr(tuple(record)).encode())
    h.update(repr(tuple(result.summary)).encode())
    for series in (
        result.bitrate_kbps(),
        result.jitter_series(),
        result.loss_series(),
        result.rtt_series(),
    ):
        h.update(repr(series.times).encode())
        h.update(repr(series.values).encode())
    if result.rab_history is not None:
        h.update(repr(result.rab_history.as_pairs()).encode())
    return h.hexdigest()


def characterization_digest(kind: str, path: str, seed: int = 3,
                            duration: float = 120.0) -> str:
    """Run one workload on one path and digest its outputs."""
    from repro import cbr, run_characterization, voip_g711

    spec_fn = {"voip": voip_g711, "cbr": cbr}[kind]
    return run_digest(run_characterization(spec_fn(duration=duration), path=path, seed=seed))
