"""repro.bench — reproducible hot-path benchmarks with CI gating.

The subsystem has four pieces:

- :mod:`repro.bench.runner` — :class:`Scenario`, :class:`BenchResult`,
  and :func:`run_scenario` (warmup + repeated timed runs,
  min/median/stdev);
- :mod:`repro.bench.scenarios` — the registry of hot paths (engine
  dispatch, HDLC encode/decode, the full VoIP/CBR characterization
  runs, vsys RPC round-trips);
- :mod:`repro.bench.baseline` — ``BENCH_<scenario>.json`` persistence
  with machine/Python metadata and recorded speedups;
- :mod:`repro.bench.compare` — the per-scenario-tolerance regression
  comparator CI runs via ``repro bench --check``.

Quick start::

    python -m repro bench --list
    python -m repro bench --scenario engine_dispatch
    python -m repro bench --update-baselines     # refresh BENCH_*.json
    python -m repro bench --check                # exit 1 on regression

:mod:`repro.bench.determinism` provides the output digests proving the
optimizations the benches measure never changed simulated results.
"""

from __future__ import annotations

from repro.bench.baseline import (
    FLEET_SCENARIOS,
    FLEET_SPEEDUP_TARGET,
    SCHEMA_VERSION,
    baseline_path,
    fleet_summary_payload,
    load_baseline,
    machine_metadata,
    result_payload,
    save_baseline,
)
from repro.bench.compare import Comparison, compare_result
from repro.bench.determinism import characterization_digest, run_digest
from repro.bench.runner import BenchResult, Scenario, run_scenario, time_once
from repro.bench.scenarios import (
    BENCH_DURATION,
    BENCH_SEED,
    REGISTRY,
    build_registry,
    characterization_pair,
)

__all__ = [
    "BENCH_DURATION",
    "BENCH_SEED",
    "BenchResult",
    "Comparison",
    "FLEET_SCENARIOS",
    "FLEET_SPEEDUP_TARGET",
    "REGISTRY",
    "SCHEMA_VERSION",
    "Scenario",
    "baseline_path",
    "build_registry",
    "characterization_digest",
    "characterization_pair",
    "compare_result",
    "fleet_summary_payload",
    "load_baseline",
    "machine_metadata",
    "result_payload",
    "run_digest",
    "run_scenario",
    "save_baseline",
    "time_once",
]
