"""Baseline persistence: ``BENCH_<scenario>.json`` files at repo root.

A baseline records one :class:`~repro.bench.runner.BenchResult`
alongside the machine/Python metadata it was measured on, the
scenario's regression tolerance, and — when the scenario has a pre-PR
reference median — the achieved speedup.  ``repro bench
--update-baselines`` writes them; ``repro bench --check`` compares
fresh runs against them.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.bench.runner import BenchResult, Scenario

SCHEMA_VERSION = 1

PathLike = Union[str, Path]


def baseline_path(name: str, root: PathLike = ".") -> Path:
    """Where scenario ``name``'s baseline lives under ``root``."""
    return Path(root) / f"BENCH_{name}.json"


def machine_metadata() -> Dict[str, str]:
    """The environment a measurement was taken in."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "executable": sys.executable,
    }


def result_payload(result: BenchResult, scenario: Scenario) -> Dict[str, Any]:
    """The full JSON document for one measurement."""
    payload: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "scenario": scenario.name,
        "description": scenario.description,
        "tolerance": scenario.tolerance,
        "result": result.to_dict(),
        "machine": machine_metadata(),
        # lint: allow(wall-clock) -- provenance metadata, never read by simulation
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    if scenario.reference_median_s is not None:
        payload["reference"] = {
            "pre_pr_median_s": scenario.reference_median_s,
            "speedup": scenario.reference_median_s / result.median_s,
        }
    return payload


def save_baseline(payload: Dict[str, Any], path: PathLike) -> Path:
    """Write one payload as pretty-printed JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return path


def load_baseline(path: PathLike) -> Optional[Dict[str, Any]]:
    """Read a baseline document, or ``None`` if the file is absent."""
    path = Path(path)
    if not path.exists():
        return None
    data = json.loads(path.read_text())
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: baseline schema {data.get('schema')!r} != {SCHEMA_VERSION}"
        )
    return data
