"""Baseline persistence: ``BENCH_<scenario>.json`` files at repo root.

A baseline records one :class:`~repro.bench.runner.BenchResult`
alongside the machine/Python metadata it was measured on, the
scenario's regression tolerance, and — when the scenario has a pre-PR
reference median — the achieved speedup.  ``repro bench
--update-baselines`` writes them; ``repro bench --check`` compares
fresh runs against them.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.bench.runner import BenchResult, Scenario

SCHEMA_VERSION = 1

PathLike = Union[str, Path]

#: The scenarios folded into the combined ``BENCH_fleet.json`` gate
#: document (the shared-kernel engine's headline throughput numbers).
FLEET_SCENARIOS = ("fleet_events", "fleet_datacalls")

#: The tentpole target: events/sec on the 256-node group scenario must
#: be at least this multiple of the pre-rewrite engine's.
FLEET_SPEEDUP_TARGET = 3.0


def baseline_path(name: str, root: PathLike = ".") -> Path:
    """Where scenario ``name``'s baseline lives under ``root``."""
    return Path(root) / f"BENCH_{name}.json"


def machine_metadata() -> Dict[str, str]:
    """The environment a measurement was taken in."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "executable": sys.executable,
    }


def result_payload(result: BenchResult, scenario: Scenario) -> Dict[str, Any]:
    """The full JSON document for one measurement."""
    payload: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "scenario": scenario.name,
        "description": scenario.description,
        "tolerance": scenario.tolerance,
        "result": result.to_dict(),
        "machine": machine_metadata(),
        # lint: allow(wall-clock) -- provenance metadata, never read by simulation
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    if scenario.units is not None:
        unit, count = scenario.units
        payload["units"] = {
            "unit": unit,
            "per_iteration": count,
            "rate_per_s": scenario.rate_per_s(result.median_s),
        }
    if scenario.reference_median_s is not None:
        payload["reference"] = {
            "pre_pr_median_s": scenario.reference_median_s,
            "speedup": scenario.reference_median_s / result.median_s,
        }
        if scenario.units is not None:
            payload["reference"]["pre_pr_rate_per_s"] = (
                scenario.rate_per_s(scenario.reference_median_s)
            )
    return payload


def fleet_summary_payload(payloads: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
    """Fold the fleet scenarios' documents into one ``BENCH_fleet.json``.

    ``payloads`` maps scenario name to its :func:`result_payload`
    document; every scenario in :data:`FLEET_SCENARIOS` must be
    present.  The summary carries each scenario's throughput
    (events/sec, datacalls/sec) with its pre-PR reference, plus the
    tentpole gate verdict: whether ``fleet_events`` hit
    :data:`FLEET_SPEEDUP_TARGET` over the pre-rewrite engine.
    """
    missing = [name for name in FLEET_SCENARIOS if name not in payloads]
    if missing:
        raise ValueError(f"fleet summary needs {', '.join(missing)}")
    scenarios: Dict[str, Any] = {}
    for name in FLEET_SCENARIOS:
        doc = payloads[name]
        entry: Dict[str, Any] = {
            "description": doc["description"],
            "median_s": doc["result"]["median_s"],
            "tolerance": doc["tolerance"],
        }
        units = doc.get("units")
        if units is not None:
            entry["unit"] = units["unit"]
            entry["per_iteration"] = units["per_iteration"]
            entry["rate_per_s"] = units["rate_per_s"]
        reference = doc.get("reference")
        if reference is not None:
            entry["pre_pr_median_s"] = reference["pre_pr_median_s"]
            entry["speedup"] = reference["speedup"]
            if "pre_pr_rate_per_s" in reference:
                entry["pre_pr_rate_per_s"] = reference["pre_pr_rate_per_s"]
        scenarios[name] = entry
    events = scenarios["fleet_events"]
    return {
        "schema": SCHEMA_VERSION,
        "scenario": "fleet",
        "description": (
            "shared-kernel gate: one 256-node group's event and datacall "
            "throughput vs the pre-rewrite per-group engine"
        ),
        "scenarios": scenarios,
        "gate": {
            "target_speedup": FLEET_SPEEDUP_TARGET,
            "measured_speedup": events.get("speedup"),
            "events_target_met": (
                events.get("speedup") is not None
                and events["speedup"] >= FLEET_SPEEDUP_TARGET
            ),
        },
        "machine": machine_metadata(),
        # lint: allow(wall-clock) -- provenance metadata, never read by simulation
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


def save_baseline(payload: Dict[str, Any], path: PathLike) -> Path:
    """Write one payload as pretty-printed JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return path


def load_baseline(path: PathLike) -> Optional[Dict[str, Any]]:
    """Read a baseline document, or ``None`` if the file is absent."""
    path = Path(path)
    if not path.exists():
        return None
    data = json.loads(path.read_text())
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: baseline schema {data.get('schema')!r} != {SCHEMA_VERSION}"
        )
    return data
