"""The ``umts`` command front-end — what runs inside the slice.

A thin wrapper over the slice's vsys connection: every method writes
one request line into the FIFO pair and returns the back-end's result.
Methods come in two flavours: the plain ones return a simulation
:class:`~repro.sim.process.Process` (yield on it inside experiment
processes), the ``*_blocking`` ones run the simulator until the call
completes (for scripts and tests driving the simulation from outside).
"""

from __future__ import annotations

from repro.core.backend import SCRIPT_NAME
from repro.sim.process import Process
from repro.vsys.daemon import VsysResult


class UmtsCommand:
    """The per-slice ``umts`` command."""

    def __init__(self, sliver):
        self.sliver = sliver
        self._conn = sliver.vsys_open(SCRIPT_NAME)

    # -- asynchronous (inside simulation processes) ----------------------

    def start(self) -> Process:
        """``umts start``: lock, dial, enforce rules."""
        return self._conn.call(["start"])

    def stop(self) -> Process:
        """``umts stop``: tear down, delete rules, unlock."""
        return self._conn.call(["stop"])

    def status(self) -> Process:
        """``umts status``: connection and lock state."""
        return self._conn.call(["status"])

    def add_destination(self, destination: str) -> Process:
        """``umts add <destination>``."""
        return self._conn.call(["add", destination])

    def del_destination(self, destination: str) -> Process:
        """``umts del <destination>``."""
        return self._conn.call(["del", destination])

    # -- blocking (driving the simulator from outside) ----------------------

    def start_blocking(self) -> VsysResult:
        """Run the simulator until ``umts start`` completes."""
        return self._conn.call_blocking(["start"])

    def stop_blocking(self) -> VsysResult:
        """Run the simulator until ``umts stop`` completes."""
        return self._conn.call_blocking(["stop"])

    def status_blocking(self) -> VsysResult:
        """Run the simulator until ``umts status`` completes."""
        return self._conn.call_blocking(["status"])

    def add_destination_blocking(self, destination: str) -> VsysResult:
        """Run the simulator until ``umts add`` completes."""
        return self._conn.call_blocking(["add", destination])

    def del_destination_blocking(self, destination: str) -> VsysResult:
        """Run the simulator until ``umts del`` completes."""
        return self._conn.call_blocking(["del", destination])

    def close(self) -> None:
        """Close the vsys FIFO pair."""
        self._conn.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<UmtsCommand of slice {self.sliver.name!r}>"
