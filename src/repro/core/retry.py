"""Bounded retry with exponential backoff and deterministic jitter.

Every component that retries — comgt's CREG poll, the connection
manager's registration/dial phases, the DNS stub resolver, the
connection supervisor — drives its attempts through a
:class:`RetryPolicy` instead of hand-rolled ``range()`` loops and
sleeps (enforced by the ``retry-policy`` lint rule).  Jitter draws come
from :mod:`repro.sim.rng` named streams, so a faulted run's recovery
timeline is a pure function of the experiment seed.

Failure classification is textual on purpose: comgt and wvdial report
through exit codes and output lines (the vsys contract), so the policy
layer pattern-matches the line that a human operator would read.
Components that can raise, raise the typed
:class:`~repro.faults.errors.TransientError` /
:class:`~repro.faults.errors.PermanentError` instead.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from repro.faults.errors import PermanentError, TransientError

__all__ = [
    "PERMANENT",
    "TRANSIENT",
    "PermanentError",
    "RetryPolicy",
    "TransientError",
    "classify_comgt",
    "classify_wvdial",
]

#: Classification verdicts for a failed attempt.
TRANSIENT = "transient"
PERMANENT = "permanent"


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try, and how long to wait between tries.

    ``delay(attempt)`` is ``base_delay * multiplier**attempt`` capped at
    ``max_delay``; with ``jitter=j`` the delay is stretched by a
    uniform factor in ``[1, 1+j]`` drawn from the supplied RNG (no RNG,
    no jitter — the unfaulted happy path must not consume draws).
    """

    max_attempts: int = 3
    base_delay: float = 1.0
    multiplier: float = 2.0
    max_delay: float = 60.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")

    def attempts(self) -> Iterator[int]:
        """Attempt indices ``0 .. max_attempts-1`` (the one sanctioned
        attempt loop; see the ``retry-policy`` lint rule)."""
        return iter(range(self.max_attempts))

    def is_last(self, attempt: int) -> bool:
        """Whether ``attempt`` is the final one (no backoff after it)."""
        return attempt >= self.max_attempts - 1

    def delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Backoff after ``attempt`` failed, jittered when ``rng`` given."""
        delay = min(self.base_delay * self.multiplier**attempt, self.max_delay)
        if self.jitter and rng is not None:
            delay *= 1.0 + rng.uniform(0.0, self.jitter)
        return delay

    def delays(self, rng: Optional[random.Random] = None) -> List[float]:
        """The full backoff schedule (one entry per non-final attempt)."""
        return [self.delay(attempt, rng) for attempt in range(self.max_attempts - 1)]


#: Output fragments that mark a registration failure as unrecoverable.
_PERMANENT_REGISTRATION = ("denied", "PIN required", "PIN rejected")
#: Same for the dial phase (wrong SIM state; NO CARRIER stays transient).
_PERMANENT_DIAL = ("SIM PIN",)


def _classify(lines: Sequence[str], permanent_markers: Sequence[str]) -> str:
    text = "\n".join(lines)
    for marker in permanent_markers:
        if marker in text:
            return PERMANENT
    return TRANSIENT


def classify_comgt(lines: Sequence[str]) -> str:
    """Classify a failed comgt run from its output lines.

    Network denial and SIM PIN problems will not heal with a retry;
    timeouts, CME errors and a silent modem are transient.
    """
    return _classify(lines, _PERMANENT_REGISTRATION)


def classify_wvdial(lines: Sequence[str]) -> str:
    """Classify a failed wvdial run (or a failed PPP negotiation).

    ``NO CARRIER`` is indistinguishable from congestion at the modem,
    so almost everything here is transient — the attempt budget bounds
    the damage.  A SIM PIN complaint is permanent.
    """
    return _classify(lines, _PERMANENT_DIAL)
