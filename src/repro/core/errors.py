"""Errors raised by the umts control plane."""


class UmtsCommandError(Exception):
    """Base class for umts command failures."""


class InterfaceLockedError(UmtsCommandError):
    """Another slice currently holds the UMTS interface."""


class NotOwnerError(UmtsCommandError):
    """The calling slice does not hold the UMTS interface."""


class ConnectionStateError(UmtsCommandError):
    """The operation does not fit the connection's current state."""


class HardwareMissingError(UmtsCommandError):
    """The node has no UMTS card, or required kernel modules are absent."""
