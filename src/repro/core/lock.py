"""The UMTS interface lock — one slice at a time.

§2.2 of the paper: "we decided to adopt a policy that allows only one
experiment (i.e. slice) at a time to control and use the UMTS
interface", because (i) the low bandwidth would make concurrent
experiments interfere and (ii) realistic runs set the dial-up
connection up and down around each test.

On the real node this is a lock file the back-end checks; here it is
an explicit object with the same check-and-lock / unlock semantics.
"""

from __future__ import annotations

from typing import Optional

from repro.core.errors import InterfaceLockedError, NotOwnerError


class InterfaceLock:
    """Mutual exclusion over the node's UMTS interface."""

    def __init__(self, resource: str = "umts0"):
        self.resource = resource
        self._holder: Optional[str] = None
        self.acquisitions = 0
        self.contentions = 0

    @property
    def holder(self) -> Optional[str]:
        """The slice currently holding the interface, if any."""
        return self._holder

    @property
    def locked(self) -> bool:
        """Whether any slice holds the interface."""
        return self._holder is not None

    def acquire(self, slice_name: str) -> None:
        """Check-and-lock for ``slice_name``.

        Re-acquisition by the holder is an error too (the connection is
        already being managed); any other holder raises
        :class:`InterfaceLockedError`.
        """
        if self._holder == slice_name:
            raise InterfaceLockedError(
                f"slice {slice_name!r} already holds {self.resource}"
            )
        if self._holder is not None:
            self.contentions += 1
            raise InterfaceLockedError(
                f"{self.resource} is locked by slice {self._holder!r}"
            )
        self._holder = slice_name
        self.acquisitions += 1

    def require_owner(self, slice_name: str, operation: str) -> None:
        """Raise :class:`NotOwnerError` unless ``slice_name`` holds the lock."""
        if self._holder is None:
            raise NotOwnerError(f"{operation}: the UMTS connection is not active")
        if self._holder != slice_name:
            raise NotOwnerError(
                f"{operation}: {self.resource} is held by slice {self._holder!r}, "
                f"not {slice_name!r}"
            )

    def release(self, slice_name: str) -> None:
        """Unlock; only the holder may release."""
        self.require_owner(slice_name, "unlock")
        self._holder = None

    def force_release(self) -> None:
        """Administrative unlock (node operator cleanup)."""
        self._holder = None

    def __repr__(self) -> str:
        state = f"held by {self._holder!r}" if self._holder else "free"
        return f"<InterfaceLock {self.resource} {state}>"
