"""The vsys back-end of the ``umts`` command.

Runs in the root context of a PlanetLab node and implements the five
operations §2.3 lists for the front-end:

- ``start`` — check and lock the UMTS interface, set up the UMTS
  connection, and enforce the routing rules;
- ``stop`` — tear down the UMTS connection, unlock the interface, and
  delete the routing rules;
- ``status`` — check the status of the connection;
- ``add <destination>`` — add a rule for this destination to be reached
  through the UMTS connection;
- ``del <destination>`` — delete the rule associated to this destination.

The handler is registered with the node's vsys daemon under the script
name ``umts``; slices listed in the ACL reach it through the FIFO
pipes, never touching the privileged objects directly.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.core.connection import UmtsConnectionManager
from repro.core.errors import UmtsCommandError
from repro.core.isolation import IsolationManager
from repro.core.lock import InterfaceLock
from repro.sim.engine import Simulator

USAGE = "usage: umts start | stop | status | add <destination> | del <destination>"

#: vsys script name the front-end opens.
SCRIPT_NAME = "umts"

#: Static per-command counter names (metric names must be literals —
#: see the ``metric-name`` lint rule; unrecognized input folds into one).
_CMD_COUNTERS = {
    "start": "umts.cmd.start",
    "stop": "umts.cmd.stop",
    "status": "umts.cmd.status",
    "add": "umts.cmd.add",
    "del": "umts.cmd.del",
}


class UmtsBackend:
    """Back-end state for one node's UMTS interface."""

    def __init__(
        self,
        sim: Simulator,
        connection: UmtsConnectionManager,
        isolation: IsolationManager,
        resolve_xid: Callable[[str], int],
        lock: Optional[InterfaceLock] = None,
    ):
        self.sim = sim
        self.connection = connection
        self.isolation = isolation
        self.resolve_xid = resolve_xid
        self.lock = lock if lock is not None else InterfaceLock(connection.ifname)
        self.events: List[Tuple[float, str]] = []
        connection.went_down.wait(self._on_connection_down)

    # -- vsys entry point ------------------------------------------------

    def handler(self, slice_name: str, argv: List[str]):
        """The vsys handler: dispatches one front-end request.

        Every request runs under an ``umts.cmd`` span; command errors
        emit an error-kind event (the flight-recorder trigger) before
        being rendered as exit-1 output, like the real script.
        """
        if not argv:
            return 1, [USAGE]
        command, args = argv[0], argv[1:]
        trace = self.sim.trace
        span = (
            trace.span("umts.cmd", command=command, slice=slice_name)
            if trace is not None
            else None
        )
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.counter(
                _CMD_COUNTERS.get(command, "umts.cmd.unknown")
            ).inc()
        try:
            code, lines = yield from self._dispatch(slice_name, command, args)
        except UmtsCommandError as exc:
            if trace is not None:
                trace.error(
                    "umts.command_error",
                    command=command,
                    slice=slice_name,
                    error=type(exc).__name__,
                    detail=str(exc),
                )
            if metrics is not None:
                metrics.counter("umts.cmd.errors").inc()
            if span is not None:
                span.fail(str(exc))
            return 1, [f"umts: {exc}"]
        except ValueError as exc:
            if span is not None:
                span.fail(str(exc))
            return 1, [f"umts: {exc}"]
        if span is not None:
            span.end(status="ok" if code == 0 else "error", code=code)
        return code, lines

    def _dispatch(self, slice_name: str, command: str, args: List[str]):
        """Route one parsed request to its operation."""
        if command == "start" and not args:
            result = yield from self._start(slice_name)
            return result
        if command == "stop" and not args:
            result = yield from self._stop(slice_name)
            return result
        if command == "status" and not args:
            return self._status(slice_name)
        if command == "add" and len(args) == 1:
            return self._add(slice_name, args[0])
        if command == "del" and len(args) == 1:
            return self._del(slice_name, args[0])
        return 1, [USAGE]

    # -- operations ----------------------------------------------------------

    def _start(self, slice_name: str):
        self.lock.acquire(slice_name)
        self._log(f"start: lock acquired by {slice_name}")
        try:
            code, lines = yield from self.connection.connect()
        except BaseException:
            # A fault thrown into the dial (or a kill) must not leave
            # the interface locked by a slice that never got it up.
            self.lock.release(slice_name)
            raise
        if code != 0:
            self.lock.release(slice_name)
            self._log("start: connect failed, lock released")
            return 1, lines
        xid = self.resolve_xid(slice_name)
        self.isolation.install(
            xid,
            self.connection.address(),
            destinations=sorted(self.isolation.destinations),
        )
        self._log(f"start: connection up for {slice_name} (xid {xid})")
        lines.append(f"umts: routing rules enforced for slice {slice_name}")
        return 0, lines

    def _stop(self, slice_name: str):
        self.lock.require_owner(slice_name, "stop")
        self.isolation.remove()
        try:
            code, lines = yield from self.connection.disconnect()
        finally:
            # Rules are already gone; the lock must follow even if the
            # hangup is interrupted, or the interface wedges forever.
            self.lock.release(slice_name)
            self._log(f"stop: connection down, lock released by {slice_name}")
        lines.append("umts: rules deleted, interface unlocked")
        return code, lines

    def _status(self, slice_name: str) -> Tuple[int, List[str]]:
        lines = list(self.connection.status_lines())
        if self.lock.locked:
            lines.append(f"locked by: {self.lock.holder}")
        else:
            lines.append("interface: unlocked")
        if self.isolation.destinations:
            lines.append(
                "destinations: " + " ".join(sorted(self.isolation.destinations))
            )
        return 0, lines

    def _add(self, slice_name: str, destination: str) -> Tuple[int, List[str]]:
        self.lock.require_owner(slice_name, "add")
        self.isolation.add_destination(destination)
        self._log(f"add: {destination} for {slice_name}")
        return 0, [f"umts: {destination} will be reached via the UMTS connection"]

    def _del(self, slice_name: str, destination: str) -> Tuple[int, List[str]]:
        self.lock.require_owner(slice_name, "del")
        self.isolation.del_destination(destination)
        self._log(f"del: {destination} for {slice_name}")
        return 0, [f"umts: rule for {destination} deleted"]

    # -- failure cleanup ------------------------------------------------------

    def _on_connection_down(self, reason: str) -> None:
        """Unexpected drops (carrier lost) must not leave stale rules."""
        # The signal's wait() is one-shot; stay subscribed so every
        # drop in a fault-heavy run gets its cleanup, not just the first.
        self.connection.went_down.wait(self._on_connection_down)
        if reason == "umts stop":
            return  # the _stop path already cleaned up
        if self.isolation.active:
            self.isolation.remove()
            self._log(f"cleanup: rules removed after '{reason}'")
        if self.lock.locked:
            holder = self.lock.holder
            self.lock.force_release()
            self._log(f"cleanup: lock of {holder} force-released after '{reason}'")

    def _log(self, message: str) -> None:
        self.events.append((self.sim.now, message))
        trace = self.sim.trace
        if trace is not None:
            trace.emit("umts.backend", message=message)
