"""The connection supervisor: automatic re-dial after a mid-call death.

The paper's deliverable is *continuous* UMTS reachability for a
PlanetLab node, but the dial-up chain dies for reasons the node cannot
prevent: coverage loss, GGSN session teardown, operator idle timers.
The supervisor watches the connection manager's ``went_down`` signal
and re-runs ``umts start`` under a :class:`~repro.core.retry.RetryPolicy`
— the same machinery a cron-driven watchdog script implements on the
real node.

A deliberate teardown (``umts stop``) must *not* trigger a re-dial, so
reasons listed in ``ignore_reasons`` are skipped.
"""

from __future__ import annotations

import random as _random
from typing import Any, Callable, Optional, Tuple

from repro.core.retry import RetryPolicy
from repro.sim.engine import Simulator
from repro.sim.process import spawn

#: Backoff between re-dial attempts: 5 s, 10 s, 20 s, 40 s.
DEFAULT_SUPERVISOR_POLICY = RetryPolicy(
    max_attempts=4, base_delay=5.0, multiplier=2.0, max_delay=60.0, jitter=0.25
)


class ConnectionSupervisor:
    """Re-dials a connection whenever it goes down unexpectedly.

    ``restart`` is a factory returning a *generator* that brings the
    connection back up and returns a ``(code, lines)`` pair — in the
    testbed that is the umts back-end's ``start`` handler, so a healed
    connection re-applies routing and isolation exactly like a manual
    ``umts start`` would.
    """

    def __init__(
        self,
        sim: Simulator,
        connection: Any,
        restart: Callable[[], Any],
        policy: Optional[RetryPolicy] = None,
        rng: Optional[_random.Random] = None,
        ignore_reasons: Tuple[str, ...] = ("umts stop",),
    ) -> None:
        self.sim = sim
        self.connection = connection
        self.restart = restart
        self.policy = policy or DEFAULT_SUPERVISOR_POLICY
        self.rng = rng
        self.ignore_reasons = ignore_reasons
        self.heals = 0
        self.gave_up = 0
        self._healing = False
        self._stopped = False
        self._arm()

    def _arm(self) -> None:
        self.connection.went_down.wait(self._on_down)

    def stop(self) -> None:
        """Stand down (scenario teardown)."""
        self._stopped = True
        self.connection.went_down.unwait(self._on_down)

    def _on_down(self, reason: Any) -> None:
        if self._stopped:
            return
        self._arm()  # the signal's wait() is one-shot; stay subscribed
        if self._healing or str(reason) in self.ignore_reasons:
            return
        self._healing = True
        trace = self.sim.trace
        if trace is not None:
            trace.emit("umts.supervisor.down", reason=str(reason))
        spawn(self.sim, self._heal(str(reason)), name="umts-supervisor")

    def _heal(self, reason: str):
        """Generator: back off, then re-run ``umts start`` until it
        sticks or the attempt budget is spent."""
        trace = self.sim.trace
        try:
            for attempt in self.policy.attempts():
                yield self.policy.delay(attempt, self.rng)
                if trace is not None:
                    trace.emit("umts.supervisor.redial", attempt=attempt, reason=reason)
                outcome = yield from self.restart()
                code = outcome[0] if isinstance(outcome, tuple) else outcome.code
                if code == 0:
                    self.heals += 1
                    if trace is not None:
                        trace.emit("umts.supervisor.healed", attempt=attempt)
                    return
            self.gave_up += 1
            if trace is not None:
                trace.error("umts.supervisor.gave_up", reason=reason)
        finally:
            self._healing = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ConnectionSupervisor heals={self.heals} gave_up={self.gave_up}>"
