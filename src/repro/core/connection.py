"""The UMTS connection manager: comgt → wvdial → pppd, and teardown.

This is the privileged machinery ``umts start``/``umts stop`` drive.
``connect()`` and ``disconnect()`` are generators so the vsys back-end
can run them as simulation processes — registration, PDP activation
and PPP negotiation all take simulated time, exactly like the real
dial-up takes seconds of wall clock.
"""

from __future__ import annotations

import enum
import random as _random
from typing import List, Optional

from repro.core.retry import PERMANENT, RetryPolicy, classify_comgt, classify_wvdial
from repro.modem.comgt import Comgt
from repro.modem.device import Modem3G
from repro.modem.wvdial import SerialPppTransport, Wvdial
from repro.net.stack import IPStack
from repro.ppp.daemon import Pppd
from repro.sim.engine import Simulator
from repro.sim.process import Signal
from repro.sim.rng import RandomStreams

#: Registration (comgt) retry schedule: 2 s, 4 s between attempts.
DEFAULT_REGISTRATION_POLICY = RetryPolicy(
    max_attempts=3, base_delay=2.0, multiplier=2.0, max_delay=30.0, jitter=0.25
)
#: Dial + PPP retry schedule: each attempt covers wvdial *and* the
#: negotiation, because a failed negotiation needs a fresh carrier.
DEFAULT_DIAL_POLICY = RetryPolicy(
    max_attempts=3, base_delay=2.0, multiplier=2.0, max_delay=30.0, jitter=0.25
)


class ConnectionState(enum.Enum):
    """Lifecycle of the dial-up connection."""

    DOWN = "down"
    REGISTERING = "registering"
    DIALING = "dialing"
    NEGOTIATING = "negotiating"
    UP = "up"
    STOPPING = "stopping"


class UmtsConnectionManager:
    """Owns the modem and the PPP session for one node."""

    def __init__(
        self,
        sim: Simulator,
        stack: IPStack,
        modem: Modem3G,
        apn: str,
        streams: RandomStreams,
        pin: Optional[str] = None,
        ifname: str = "ppp0",
        registration_policy: Optional[RetryPolicy] = None,
        dial_policy: Optional[RetryPolicy] = None,
    ):
        self.sim = sim
        self.stack = stack
        self.modem = modem
        self.apn = apn
        self.pin = pin
        self.ifname = ifname
        self.streams = streams
        self.registration_policy = registration_policy or DEFAULT_REGISTRATION_POLICY
        self.dial_policy = dial_policy or DEFAULT_DIAL_POLICY
        self.state = ConnectionState.DOWN
        self.pppd: Optional[Pppd] = None
        self.transport: Optional[SerialPppTransport] = None
        self.connected_at: Optional[float] = None
        self.connects = 0
        self.disconnects = 0
        self.carrier_losses = 0
        self.retries = 0
        self._retry_rng: Optional[_random.Random] = None
        #: fired with a reason when an *established* connection drops —
        #: the backend's cleanup and the supervisor listen here.  A
        #: carrier death mid-negotiation is connect()'s internal retry
        #: business and must not look like a connection loss to them.
        self.went_down = Signal(sim, "umts.down")
        #: fired on every carrier loss, established or not (internal:
        #: wakes a connect() blocked in PPP negotiation).
        self._carrier_down = Signal(sim, "umts.carrier-down")

    # -- observability ----------------------------------------------------

    def _set_state(self, new_state: ConnectionState, reason: str = "") -> None:
        """Move the lifecycle, emitting the transition on the trace bus."""
        old_state = self.state
        self.state = new_state
        if old_state is new_state:
            return
        trace = self.sim.trace
        if trace is not None:
            trace.emit(
                "umts.connection.state",
                kind="transition",
                old=old_state.value,
                new=new_state.value,
                reason=reason,
            )

    def _count(self, name: str) -> None:
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.counter(name).inc()

    # -- state inspection -------------------------------------------------

    @property
    def is_up(self) -> bool:
        """True while ppp0 exists and IPCP is open."""
        return self.state == ConnectionState.UP and self.pppd is not None and self.pppd.is_up

    def address(self) -> Optional[str]:
        """The operator-assigned address, while up."""
        if self.is_up and self.pppd.iface is not None:
            return str(self.pppd.iface.address)
        return None

    def dns_servers(self):
        """The DNS servers the operator pushed via IPCP (while up)."""
        if self.is_up:
            return self.pppd.ipcp.dns_servers
        return (None, None)

    def uptime(self) -> Optional[float]:
        """Seconds since the session reached the data phase."""
        if self.connected_at is None or not self.is_up:
            return None
        return self.sim.now - self.connected_at

    def status_lines(self) -> List[str]:
        """What ``umts status`` prints."""
        lines = [f"state: {self.state.value}"]
        if self.is_up:
            lines.append(f"interface: {self.ifname}")
            lines.append(f"address: {self.address()}")
            lines.append(f"uptime: {self.uptime():.1f}s")
        return lines

    # -- connect / disconnect ------------------------------------------------

    def _backoff_rng(self) -> _random.Random:
        """The jitter stream, created on first use.

        Lazy on purpose: the unfaulted happy path never backs off, so
        it must not even *open* the stream (named-stream creation is
        cheap but observable in exhaustive-determinism audits).
        """
        if self._retry_rng is None:
            self._retry_rng = self.streams.stream("umts-retry")
        return self._retry_rng

    def _retry_backoff(self, phase: str, attempt: int, policy: RetryPolicy, trace):
        """Generator: record one retry and wait out the backoff."""
        self.retries += 1
        self._count("umts.retries")
        delay = policy.delay(attempt, self._backoff_rng())
        if trace is not None:
            trace.emit("umts.retry", phase=phase, attempt=attempt, delay=round(delay, 6))
        yield delay

    def _register_with_retry(self, trace):
        """Generator: run comgt under the registration policy."""
        policy = self.registration_policy
        code, lines = 1, ["comgt: not attempted"]
        for attempt in policy.attempts():
            code, lines = yield from Comgt(self.modem.port, pin=self.pin).run()
            if code == 0 or classify_comgt(lines) == PERMANENT or policy.is_last(attempt):
                return code, lines
            yield from self._retry_backoff("registration", attempt, policy, trace)
        return code, lines

    def connect(self):
        """Generator: bring the connection up.  Returns (code, lines).

        Registration runs under ``registration_policy``; the dial and
        the PPP negotiation retry together under ``dial_policy`` (a
        failed negotiation needs a fresh carrier, so the two phases are
        one unit of work).  Permanent failures — registration denied,
        SIM PIN trouble — abort immediately.
        """
        if self.state != ConnectionState.DOWN:
            return 1, [f"umts: connection is {self.state.value}, expected down"]
        trace = self.sim.trace
        # lint: allow(resource-lifecycle) -- the dial loop always returns
        # from inside (is_last ends the span on the final attempt); the
        # fall-off return below it is unreachable in practice.
        span = trace.span("umts.connect", apn=self.apn) if trace is not None else None
        self._set_state(ConnectionState.REGISTERING, "umts start")
        code, lines = yield from self._register_with_retry(trace)
        if code != 0:
            self._set_state(ConnectionState.DOWN, "registration failed")
            if span is not None:
                span.fail("registration failed")
            self._count("umts.connect_failures")
            return 1, lines
        policy = self.dial_policy
        for attempt in policy.attempts():
            self._set_state(ConnectionState.DIALING, "registered")
            dial_code, dial_lines = yield from Wvdial(
                self.modem.port, apn=self.apn
            ).run()
            lines.extend(dial_lines)
            if dial_code != 0:
                if classify_wvdial(dial_lines) == PERMANENT or policy.is_last(attempt):
                    self._set_state(ConnectionState.DOWN, "dial failed")
                    if span is not None:
                        span.fail("dial failed")
                    self._count("umts.connect_failures")
                    return 1, lines
                yield from self._retry_backoff("dial", attempt, policy, trace)
                continue
            self._set_state(ConnectionState.NEGOTIATING, "carrier acquired")
            self.transport = SerialPppTransport(
                self.sim, self.modem.port, on_carrier_lost=self._carrier_lost
            )
            self.pppd = Pppd(
                self.sim,
                self.stack,
                self.transport,
                role="client",
                ifname=self.ifname,
                rng=self.streams.stream(f"ppp-magic.{self.connects}"),
                request_dns=True,  # pppd's usepeerdns: take the operator's DNS
            )
            outcome = Signal(self.sim, "ppp-outcome")

            def on_lost(reason, _outcome=outcome):
                # Carrier death mid-negotiation: neither pppd.up nor
                # pppd.failed would ever fire, so this keeps connect()
                # from blocking forever.
                _outcome.fire(("failed", reason))

            self.pppd.up.wait(lambda iface: outcome.fire(("up", iface)))
            self.pppd.failed.wait(lambda reason: outcome.fire(("failed", reason)))
            self._carrier_down.wait(on_lost)
            self.pppd.start()
            kind, value = yield outcome
            self._carrier_down.unwait(on_lost)
            if kind == "up":
                # The session can also die under a live carrier (peer
                # Terminate, LCP echo timeout, a failed renegotiation
                # tearing ppp0 down): watch pppd itself, not just the
                # modem.  The carrier-loss and stop paths leave UP
                # synchronously before this +0 callback runs, so it
                # no-ops there.
                self.pppd.down.wait(self._ppp_down)
                self._set_state(ConnectionState.UP, "ipcp open")
                self.connected_at = self.sim.now
                self.connects += 1
                self._count("umts.connects")
                if trace is not None:
                    trace.emit(
                        "dial.addr_assigned", addr=str(value.address), ifname=self.ifname
                    )
                if span is not None:
                    span.end(addr=str(value.address))
                lines.append(f"pppd: {self.ifname} up, local address {value.address}")
                return 0, lines
            self._drop_transport()
            # Hard-abort the abandoned session: a frame already queued
            # behind the failure can otherwise still open IPCP on the
            # old pppd and leave a stale ppp0 with no owner to remove.
            self.pppd.carrier_lost(f"abandoned: {value}")
            self.pppd = None
            lines.append(f"pppd: {value}")
            if trace is not None:
                trace.error("umts.ppp_failed", reason=str(value))
            if policy.is_last(attempt):
                self._set_state(ConnectionState.DOWN, f"ppp failed: {value}")
                if span is not None:
                    span.fail(str(value))
                self._count("umts.connect_failures")
                return 1, lines
            # Return the modem to command mode (and release the half-dead
            # data call) before backing off and re-dialing.
            yield from Wvdial(self.modem.port, apn=self.apn).hangup()
            yield from self._retry_backoff("ppp", attempt, policy, trace)
        return 1, lines  # pragma: no cover - loop always returns

    def disconnect(self):
        """Generator: tear the connection down.  Returns (code, lines)."""
        if self.state != ConnectionState.UP:
            return 1, [f"umts: connection is {self.state.value}, expected up"]
        trace = self.sim.trace
        span = trace.span("umts.disconnect") if trace is not None else None
        self._set_state(ConnectionState.STOPPING, "umts stop")
        self.pppd.disconnect("umts stop")
        self._drop_transport()
        dialer = Wvdial(self.modem.port, apn=self.apn)
        code, lines = yield from dialer.hangup()
        # The modem hung up: the old pppd exits with the carrier.  This
        # also silences its Terminate-Request retransmissions, which
        # would otherwise leak into the next dial-up's serial stream.
        self.pppd.carrier_lost("modem hangup")
        self.pppd = None
        self._set_state(ConnectionState.DOWN, "umts stop")
        self.connected_at = None
        self.disconnects += 1
        self._count("umts.disconnects")
        if span is not None:
            span.end(code=code)
        self.went_down.fire("umts stop")
        return code, lines

    # -- failure paths -----------------------------------------------------------

    def _carrier_lost(self) -> None:
        was_up = self.state == ConnectionState.UP
        self.carrier_losses += 1
        self._count("umts.carrier_losses")
        trace = self.sim.trace
        if trace is not None:
            trace.error("umts.carrier_lost", state=self.state.value)
        if self.pppd is not None:
            self.pppd.carrier_lost("NO CARRIER")
        self._drop_transport()
        self._set_state(ConnectionState.DOWN, "carrier lost")
        self.connected_at = None
        self._carrier_down.fire("carrier lost")
        if was_up:
            self.went_down.fire("carrier lost")

    def _ppp_down(self, reason: str) -> None:
        """pppd lost ppp0 while the carrier stayed up.

        Peer Terminate-Request, LCP echo timeout and a renegotiation
        that fails to re-open all remove the interface without any
        modem-level event; the back-end still needs its ``went_down``
        cleanup or the lock and the isolation rules leak.
        """
        if self.state != ConnectionState.UP:
            return  # a stop/carrier-loss teardown already owns this drop
        self._count("umts.ppp_session_losses")
        trace = self.sim.trace
        if trace is not None:
            trace.error("umts.ppp_down", reason=str(reason))
        if self.pppd is not None:
            # Abort any renegotiation still in flight; the interface is
            # already gone, so this cannot re-fire pppd.down.
            self.pppd.carrier_lost(f"session down: {reason}")
        self._drop_transport()
        self._set_state(ConnectionState.DOWN, f"ppp down: {reason}")
        self.connected_at = None
        self.went_down.fire(f"ppp down: {reason}")

    def _drop_transport(self) -> None:
        if self.transport is not None:
            self.transport.stop()
            self.transport = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<UmtsConnectionManager {self.state.value} apn={self.apn!r}>"
