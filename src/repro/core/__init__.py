"""The paper's contribution: UMTS connectivity under PlanetLab's rules.

This package is the reproduction of §2 of the paper — the usage model
and implementation that let an unprivileged PlanetLab slice control a
UMTS interface:

- :class:`InterfaceLock` — one slice at a time (§2.2);
- :class:`UmtsConnectionManager` — comgt → wvdial → pppd orchestration;
- :class:`IsolationManager` — the additional routing table, RPDB rules,
  VNET+ mark rules and the ppp0 drop rule (§2.3);
- :class:`UmtsBackend` — the vsys back-end tying those together;
- :class:`UmtsCommand` — the slice-side ``umts`` front-end
  (start / stop / status / add / del).
"""

from repro.core.backend import SCRIPT_NAME, USAGE, UmtsBackend
from repro.core.connection import ConnectionState, UmtsConnectionManager
from repro.core.retry import (
    PERMANENT,
    TRANSIENT,
    RetryPolicy,
    classify_comgt,
    classify_wvdial,
)
from repro.core.supervisor import ConnectionSupervisor
from repro.core.errors import (
    ConnectionStateError,
    HardwareMissingError,
    InterfaceLockedError,
    NotOwnerError,
    UmtsCommandError,
)
from repro.core.frontend import UmtsCommand
from repro.core.isolation import (
    PREF_FWMARK_RULE,
    PREF_SRC_RULE,
    UMTS_FWMARK,
    UMTS_TABLE,
    IsolationManager,
)
from repro.core.lock import InterfaceLock

__all__ = [
    "PERMANENT",
    "TRANSIENT",
    "ConnectionState",
    "ConnectionStateError",
    "ConnectionSupervisor",
    "HardwareMissingError",
    "InterfaceLock",
    "InterfaceLockedError",
    "IsolationManager",
    "NotOwnerError",
    "RetryPolicy",
    "PREF_FWMARK_RULE",
    "PREF_SRC_RULE",
    "SCRIPT_NAME",
    "UMTS_FWMARK",
    "UMTS_TABLE",
    "USAGE",
    "UmtsBackend",
    "UmtsCommand",
    "UmtsCommandError",
    "UmtsConnectionManager",
    "classify_comgt",
    "classify_wvdial",
]
