"""VServer security contexts."""

from __future__ import annotations

from repro.net.errors import PermissionDeniedError
from repro.net.packet import ROOT_XID


class SecurityContext:
    """One VServer security context (an ``xid``).

    xid 0 is the root context; everything else is an unprivileged
    slice context.  :meth:`require_root` is the guard privileged
    operations call — inside a slice it raises
    :class:`PermissionDeniedError`, which is exactly the failure the
    paper's vsys mechanism exists to work around.
    """

    def __init__(self, xid: int, name: str = ""):
        if xid < 0:
            raise ValueError(f"xid must be non-negative, got {xid!r}")
        self.xid = xid
        self.name = name or (f"ctx-{xid}" if xid else "root")

    @property
    def is_root(self) -> bool:
        """Whether this is the privileged root context."""
        return self.xid == ROOT_XID

    def require_root(self, operation: str) -> None:
        """Raise unless this context is root."""
        if not self.is_root:
            raise PermissionDeniedError(
                f"{operation}: not permitted in slice context {self.name!r} "
                f"(xid {self.xid})"
            )

    def __repr__(self) -> str:
        return f"<SecurityContext {self.name!r} xid={self.xid}>"


#: The singleton-ish root context (fresh instances compare by xid anyway).
ROOT_CONTEXT = SecurityContext(ROOT_XID, "root")
