"""Linux-VServer slice model.

PlanetLab virtualizes nodes with Linux VServer: each slice gets a
*security context* identified by an integer ``xid``, soft-partitioned
from the others.  Slices have very limited privileges — in particular
they cannot manipulate routing tables, netfilter, or PPP daemons,
which is the whole reason the paper needs vsys.

This package models the pieces that matter:

- :class:`SecurityContext` — the xid and the privilege boundary;
- :class:`Slice` / :class:`Sliver` — a named experiment and its
  per-node instantiation, which can create (xid-tagged) sockets and
  talk to vsys, and nothing more;
- VNET+ semantics — every socket a sliver creates tags its packets
  with the sliver's xid (see :mod:`repro.vserver.vnet`).
"""

from repro.vserver.bwlimit import SliceBandwidthLimiter, TokenBucket
from repro.vserver.context import ROOT_CONTEXT, SecurityContext
from repro.vserver.slice import Slice, Sliver
from repro.vserver.vnet import VnetPlus

__all__ = [
    "ROOT_CONTEXT",
    "SecurityContext",
    "Slice",
    "SliceBandwidthLimiter",
    "Sliver",
    "TokenBucket",
    "VnetPlus",
]
