"""Per-slice bandwidth limiting — PlanetLab's ``bwlimit`` subsystem.

Real PlanetLab nodes cap each slice's outbound bandwidth with an HTB
class per VServer context on ``eth0``.  That machinery interacts with
the paper's work in one important way: it is xid-keyed, like the VNET+
marking, and it is one more reason the low-bandwidth UMTS interface
needs its own dedicated policy (one slice, no sharing) instead of the
wired interface's per-slice shaping.

:class:`SliceBandwidthLimiter` reproduces the shaping behaviour: a
token bucket per slice, a FIFO holding packets that arrive while the
bucket is empty, and drops once that queue overflows.  Root-context
traffic (xid 0) bypasses the limiter, as node management traffic does
on PlanetLab.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.net.packet import ROOT_XID, Packet
from repro.sim.engine import Simulator


class TokenBucket:
    """A classic token bucket: ``rate_bps`` refill, ``burst_bytes`` depth."""

    def __init__(self, sim: Simulator, rate_bps: float, burst_bytes: int):
        if rate_bps <= 0 or burst_bytes <= 0:
            raise ValueError("rate and burst must be positive")
        self.sim = sim
        self.rate_bps = rate_bps
        self.burst_bytes = burst_bytes
        self._tokens = float(burst_bytes)
        self._last_refill = sim.now

    def _refill(self) -> None:
        elapsed = self.sim.now - self._last_refill
        self._last_refill = self.sim.now
        self._tokens = min(
            self.burst_bytes, self._tokens + elapsed * self.rate_bps / 8.0
        )

    def try_consume(self, size_bytes: int) -> bool:
        """Take ``size_bytes`` of tokens if available."""
        self._refill()
        if self._tokens >= size_bytes:
            self._tokens -= size_bytes
            return True
        return False

    def time_until(self, size_bytes: int) -> float:
        """Seconds until ``size_bytes`` of tokens will be available."""
        self._refill()
        deficit = size_bytes - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit * 8.0 / self.rate_bps


class SliceBandwidthLimiter:
    """HTB-style egress shaping, one class per slice xid.

    Packets from a limited slice that exceed its rate are queued (up to
    ``queue_bytes`` per slice) and released as tokens accrue; overflow
    is dropped.  ``set_limit`` mirrors PlanetLab's per-slice cap knob.
    """

    def __init__(
        self,
        sim: Simulator,
        transmit: Callable[[Packet], None],
        default_rate_bps: float = 10_000_000.0,
        default_burst_bytes: int = 100_000,
        queue_bytes: int = 200_000,
    ):
        self.sim = sim
        self.transmit = transmit
        self.default_rate_bps = default_rate_bps
        self.default_burst_bytes = default_burst_bytes
        self.queue_bytes = queue_bytes
        self._buckets: Dict[int, TokenBucket] = {}
        self._queues: Dict[int, Deque[Packet]] = {}
        self._queued_bytes: Dict[int, int] = {}
        self._draining: Dict[int, bool] = {}
        self._limits: Dict[int, Tuple[float, int]] = {}
        self.shaped_packets = 0
        self.dropped_packets = 0

    def set_limit(self, xid: int, rate_bps: float, burst_bytes: Optional[int] = None) -> None:
        """Configure one slice's cap (replacing its bucket)."""
        burst = burst_bytes if burst_bytes is not None else self.default_burst_bytes
        self._limits[xid] = (rate_bps, burst)
        self._buckets[xid] = TokenBucket(self.sim, rate_bps, burst)

    def limit_of(self, xid: int) -> Tuple[float, int]:
        """The (rate, burst) in force for a slice."""
        return self._limits.get(
            xid, (self.default_rate_bps, self.default_burst_bytes)
        )

    def _bucket(self, xid: int) -> TokenBucket:
        if xid not in self._buckets:
            rate, burst = self.limit_of(xid)
            self._buckets[xid] = TokenBucket(self.sim, rate, burst)
        return self._buckets[xid]

    def send(self, packet: Packet) -> None:
        """Shape one packet (root-context traffic passes through)."""
        if packet.xid == ROOT_XID:
            self.transmit(packet)
            return
        xid = packet.xid
        queue = self._queues.setdefault(xid, deque())
        if not queue and self._bucket(xid).try_consume(packet.length):
            self.transmit(packet)
            return
        if self._queued_bytes.get(xid, 0) + packet.length > self.queue_bytes:
            self.dropped_packets += 1
            return
        queue.append(packet)
        self._queued_bytes[xid] = self._queued_bytes.get(xid, 0) + packet.length
        self.shaped_packets += 1
        if not self._draining.get(xid, False):
            self._schedule_drain(xid)

    def _schedule_drain(self, xid: int) -> None:
        queue = self._queues[xid]
        if not queue:
            self._draining[xid] = False
            return
        self._draining[xid] = True
        wait = self._bucket(xid).time_until(queue[0].length)
        self.sim.post(max(wait, 1e-9), self._drain_one, xid)

    def _drain_one(self, xid: int) -> None:
        queue = self._queues[xid]
        if queue and self._bucket(xid).try_consume(queue[0].length):
            packet = queue.popleft()
            self._queued_bytes[xid] -= packet.length
            self.transmit(packet)
        self._schedule_drain(xid)

    def backlog_bytes(self, xid: int) -> int:
        """Bytes currently shaped for a slice."""
        return self._queued_bytes.get(xid, 0)
