"""VNET+ — slice-aware packet tagging.

PlanetLab's VNET+ kernel subsystem associates every packet with the
VServer context that generated it and exposes that association to
iptables (the ``xid`` match).  In the simulation the tagging lives in
:class:`VnetPlus`, the socket factory slivers go through: every socket
it hands out stamps its context's xid into the packets it sends, and
:class:`~repro.netfilter.matches.XidMatch` reads it back.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.net.socket import UDPSocket
from repro.vserver.context import SecurityContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.stack import IPStack


class VnetPlus:
    """The socket factory enforcing slice tagging on one node."""

    def __init__(self, stack: "IPStack"):
        self.stack = stack
        self.sockets_created = 0

    def socket(self, context: SecurityContext) -> UDPSocket:
        """Create a UDP socket whose packets carry ``context``'s xid."""
        self.sockets_created += 1
        return UDPSocket(self.stack, xid=context.xid)

    def sockets_of(self, xid: int) -> List[UDPSocket]:
        """Sockets currently bound on the stack for context ``xid``."""
        found = []
        for holders in self.stack._udp_ports.values():
            for sock in holders:
                if sock.xid == xid:
                    found.append(sock)
        return found
