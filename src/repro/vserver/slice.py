"""Slices and slivers.

A *slice* is a network-wide experiment container; a *sliver* is its
virtual machine on one node.  The capabilities a sliver exposes are
deliberately the only ones PlanetLab grants: create sockets (tagged
with the slice xid by VNET+), resolve its own name/xid, and open vsys
connections.  Privileged objects (the node's iptables/ip facades, the
modem, pppd) are simply *not reachable* from a sliver; the explicit
guard methods raise :class:`PermissionDeniedError` so tests can assert
the boundary.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.net.icmp import Pinger
from repro.net.socket import UDPSocket
from repro.vserver.context import SecurityContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.stack import IPStack
    from repro.vsys.daemon import VsysConnection, VsysDaemon


class Slice:
    """A PlanetLab slice: a name, an xid, and its slivers."""

    def __init__(self, name: str, xid: int):
        if xid <= 0:
            raise ValueError(f"slice xid must be positive, got {xid!r}")
        self.name = name
        self.context = SecurityContext(xid, name)
        self.slivers: Dict[str, "Sliver"] = {}

    @property
    def xid(self) -> int:
        """The slice's VServer context id."""
        return self.context.xid

    def sliver_on(self, node_name: str) -> "Sliver":
        """The sliver instantiated on ``node_name``."""
        return self.slivers[node_name]

    def __repr__(self) -> str:
        return f"<Slice {self.name!r} xid={self.xid} slivers={sorted(self.slivers)}>"


class Sliver:
    """A slice's virtual machine on one node.

    Constructed by the node (see
    :meth:`repro.testbed.planetlab.PlanetLabNode.create_sliver`), which
    wires in the stack's VNET+ socket factory and the vsys daemon.
    """

    def __init__(
        self,
        slice_: Slice,
        node_name: str,
        stack: "IPStack",
        vsys: "VsysDaemon",
    ):
        self.slice = slice_
        self.node_name = node_name
        self._stack = stack
        self._vsys = vsys
        self.sockets: List[UDPSocket] = []
        slice_.slivers[node_name] = self

    @property
    def name(self) -> str:
        """The slice name (what vsys ACLs key on)."""
        return self.slice.name

    @property
    def xid(self) -> int:
        """The context id stamped into this sliver's packets."""
        return self.slice.xid

    @property
    def context(self) -> SecurityContext:
        """This sliver's security context."""
        return self.slice.context

    # -- the capabilities a slice actually has -------------------------

    def socket(self) -> UDPSocket:
        """Create a UDP socket tagged with this slice's xid."""
        sock = UDPSocket(self._stack, xid=self.xid)
        self.sockets.append(sock)
        return sock

    def pinger(self, **kwargs) -> Pinger:
        """An ICMP echo client running inside the slice."""
        return Pinger(self._stack, xid=self.xid, **kwargs)

    def vsys_open(self, script_name: str) -> "VsysConnection":
        """Open the vsys FIFO pair for ``script_name``.

        Raises :class:`~repro.vsys.daemon.VsysError` when the script
        does not exist or this slice is not in its ACL.
        """
        return self._vsys.open(self.name, script_name)

    # -- the privilege boundary -----------------------------------------

    def iptables(self, *_args, **_kwargs) -> None:
        """Slices may not touch netfilter directly."""
        self.context.require_root("iptables")

    def ip_route(self, *_args, **_kwargs) -> None:
        """Slices may not touch the routing tables directly."""
        self.context.require_root("ip route")

    def pppd(self, *_args, **_kwargs) -> None:
        """Slices may not run pppd."""
        self.context.require_root("pppd")

    def __repr__(self) -> str:
        return f"<Sliver {self.name!r}@{self.node_name} xid={self.xid}>"
