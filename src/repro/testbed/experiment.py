"""The §3 characterization experiment, runnable on either path.

Reproduces the paper's methodology: D-ITG traffic between the Napoli
node and the INRIA node, either **UMTS-to-Ethernet** (the slice starts
the UMTS connection, registers the INRIA node as a destination, and
its probes leave through ``ppp0``) or **Ethernet-to-Ethernet** (the
same flow over the wired path).  QoS samples are averaged over 200 ms
windows by the decoder, like the figures.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.sim.monitor import TimeSeries
from repro.testbed.scenarios import OneLabScenario
from repro.traffic.decoder import FlowSummary, ItgDecoder
from repro.traffic.flows import FlowSpec
from repro.traffic.receiver import ItgReceiver
from repro.traffic.sender import ItgSender

PATH_UMTS = "umts"
PATH_ETHERNET = "ethernet"


class ExperimentError(Exception):
    """Scenario management failure (umts start/stop, bad path name)."""


class ExperimentResult:
    """Everything one run produces."""

    def __init__(
        self,
        scenario: OneLabScenario,
        path: str,
        spec: FlowSpec,
        sender: ItgSender,
        receiver: ItgReceiver,
        decoder: ItgDecoder,
        rab_history: Optional[TimeSeries] = None,
    ):
        self.scenario = scenario
        self.path = path
        self.spec = spec
        self.sender = sender
        self.receiver = receiver
        self.decoder = decoder
        #: the RAB grade changes during the run (UMTS path only).
        self.rab_history = rab_history

    @property
    def summary(self) -> FlowSummary:
        """End-of-run aggregate statistics."""
        return self.decoder.summary()

    def bitrate_kbps(self) -> TimeSeries:
        """Figure-style received bitrate series (kbit/s per 200 ms)."""
        return self.decoder.bitrate_kbps()

    def jitter_series(self) -> TimeSeries:
        """Figure-style jitter series (s per 200 ms)."""
        return self.decoder.jitter_series()

    def loss_series(self) -> TimeSeries:
        """Figure-style loss series (pkt per 200 ms)."""
        return self.decoder.loss_series()

    def rtt_series(self) -> TimeSeries:
        """Figure-style RTT series (s per 200 ms)."""
        return self.decoder.rtt_series()


DIRECTION_UPLINK = "uplink"
DIRECTION_DOWNLINK = "downlink"


def run_characterization(
    spec: FlowSpec,
    path: str = PATH_UMTS,
    seed: int = 0,
    scenario: Optional[OneLabScenario] = None,
    operator_factory: Optional[Callable] = None,
    drain: float = 20.0,
    direction: str = DIRECTION_UPLINK,
) -> ExperimentResult:
    """Run one flow over one path and decode the logs.

    Builds a fresh :class:`OneLabScenario` unless one is supplied.  On
    the UMTS path the slice performs the full ``umts start`` /
    ``umts add <INRIA>`` / traffic / ``umts stop`` sequence through
    vsys, exactly as §3.1 describes.

    ``direction`` selects who generates: ``"uplink"`` is the paper's
    setup (Napoli sends); ``"downlink"`` reverses it — the INRIA node
    sends toward the UMTS-equipped node, whose receiver binds to the
    mobile address (the paper's "explicitly bind to the UMTS
    interface" usage) so its echoes ride the source-address RPDB rule.
    Because the commercial GGSN firewalls unsolicited inbound traffic,
    the downlink receiver first punches the flow open with one control
    datagram, the way D-ITG's mobile-initiated signalling would.
    """
    if path not in (PATH_UMTS, PATH_ETHERNET):
        raise ExperimentError(f"unknown path {path!r}")
    if direction not in (DIRECTION_UPLINK, DIRECTION_DOWNLINK):
        raise ExperimentError(f"unknown direction {direction!r}")
    if scenario is None:
        kwargs = {"seed": seed}
        if operator_factory is not None:
            kwargs["operator_factory"] = operator_factory
        scenario = OneLabScenario(**kwargs)
    sim = scenario.sim
    umts = None
    rab_history = None
    if path == PATH_UMTS:
        umts = scenario.umts_command()
        started = umts.start_blocking()
        if not started.ok:
            raise ExperimentError(f"umts start failed: {started.text}")
        if direction == DIRECTION_UPLINK:
            added = umts.add_destination_blocking(scenario.inria_addr)
            if not added.ok:
                raise ExperimentError(f"umts add failed: {added.text}")
        rab_history = scenario.operator.calls[0].rab.grade_history
    if direction == DIRECTION_UPLINK:
        receiver = ItgReceiver(sim, scenario.inria_sliver.socket(), port=spec.dport)
        sender_socket = scenario.napoli_sliver.socket()
        destination = scenario.inria_addr
    else:
        receiver_socket = scenario.napoli_sliver.socket()
        if path == PATH_UMTS:
            mobile_address = scenario.umts_address()
            receiver_socket.bind(address=mobile_address, port=spec.dport)
            receiver = ItgReceiver(sim, receiver_socket, port=spec.dport)
            # Punch the operator's ingress filter open (mobile-initiated).
            receiver_socket.sendto("hole-punch", 8, scenario.inria_addr, spec.dport)
            sim.run(until=sim.now + 2.0)
            destination = mobile_address
        else:
            receiver = ItgReceiver(sim, receiver_socket, port=spec.dport)
            destination = scenario.napoli_addr
        sender_socket = scenario.inria_sliver.socket()
    sender = ItgSender(
        sim,
        sender_socket,
        destination,
        spec,
        scenario.streams.stream(f"itg.{spec.name}"),
    )
    sender.start()
    sim.run(until=sim.now + spec.duration + drain)
    if umts is not None:
        stopped = umts.stop_blocking()
        if not stopped.ok:
            raise ExperimentError(f"umts stop failed: {stopped.text}")
    decoder = ItgDecoder(sender.log, receiver.log_for(sender.flow_id))
    return ExperimentResult(
        scenario, path, spec, sender, receiver, decoder, rab_history
    )


def run_repetitions(
    spec_factory: Callable[[], FlowSpec],
    path: str,
    repetitions: int = 20,
    base_seed: int = 1000,
    operator_factory: Optional[Callable] = None,
) -> List[FlowSummary]:
    """§3.1's repeatability protocol: N independent runs, fresh seeds.

    Returns the per-run summaries ("each measurement experiment was
    executed 20 times and very similar results were obtained").
    """
    summaries = []
    for repetition in range(repetitions):
        result = run_characterization(
            spec_factory(),
            path=path,
            seed=base_seed + repetition,
            operator_factory=operator_factory,
        )
        summaries.append(result.summary)
    return summaries
