"""Testbed assembly: PlanetLab nodes, the Internet, the §3 scenario.

- :class:`PlanetLabNode` — stack + slivers + vsys + kernel modules +
  (optionally) the UMTS card and control plane;
- :class:`Internet` — the forwarding core the LANs and the operator's
  GGSN hang off;
- :class:`OneLabScenario` — the paper's two-node setup (Napoli with
  UMTS, INRIA wired), ready to run;
- :func:`run_characterization` / :func:`run_repetitions` — the §3
  experiment protocol producing figure-shaped series.
"""

from repro.testbed.experiment import (
    DIRECTION_DOWNLINK,
    DIRECTION_UPLINK,
    PATH_ETHERNET,
    PATH_UMTS,
    ExperimentError,
    ExperimentResult,
    run_characterization,
    run_repetitions,
)
from repro.testbed.internet import Internet
from repro.testbed.kernel import (
    CARD_MODULE_SETS,
    PLANETLAB_UMTS_MODULES,
    PPP_MODULE_SET,
    KernelModuleRegistry,
    ModuleError,
)
from repro.testbed.planetlab import PlanetLabNode
from repro.testbed.scenarios import (
    DEFAULT_SLICE_NAME,
    DEFAULT_SLICE_XID,
    INRIA_NODE_ADDR,
    NAPOLI_NODE_ADDR,
    OneLabScenario,
)

__all__ = [
    "CARD_MODULE_SETS",
    "DEFAULT_SLICE_NAME",
    "DEFAULT_SLICE_XID",
    "DIRECTION_DOWNLINK",
    "DIRECTION_UPLINK",
    "ExperimentError",
    "ExperimentResult",
    "INRIA_NODE_ADDR",
    "Internet",
    "KernelModuleRegistry",
    "ModuleError",
    "NAPOLI_NODE_ADDR",
    "OneLabScenario",
    "PATH_ETHERNET",
    "PATH_UMTS",
    "PLANETLAB_UMTS_MODULES",
    "PPP_MODULE_SET",
    "PlanetLabNode",
    "run_characterization",
    "run_repetitions",
]
