"""A small Internet: one core router LANs and operators hang off."""

from __future__ import annotations

import random as _random
from typing import Optional

from repro.net.interface import EthernetInterface, Interface
from repro.net.link import Link
from repro.net.stack import IPStack
from repro.sim.engine import Simulator
from repro.sim.rng import Distribution


class Internet:
    """A single forwarding core node.

    One router is enough for the reproduction's topologies (the paper's
    paths traverse the GREN, which is fast and quiet — its detail does
    not drive any figure); attach points with per-link rate/delay/jitter
    model the access tails where the behaviour actually differs.
    """

    def __init__(self, sim: Simulator, name: str = "internet-core"):
        self.sim = sim
        self.router = IPStack(sim, name)
        self.router.forwarding = True
        self._attachments = 0

    def attach(
        self,
        iface: Interface,
        subnet_router_address: str,
        prefix_len: int,
        rate_bps: float = 100e6,
        delay: float = 0.002,
        jitter: Optional[Distribution] = None,
        rng: Optional[_random.Random] = None,
        name: str = "",
    ) -> Link:
        """Wire an interface (already on some stack) to the core.

        Creates the router-side interface on the subnet, configures it
        with ``subnet_router_address`` and returns the link.
        """
        self._attachments += 1
        router_iface = self.router.add_interface(
            EthernetInterface(name or f"net{self._attachments}")
        )
        self.router.configure_interface(router_iface, subnet_router_address, prefix_len)
        return Link(
            self.sim,
            iface,
            router_iface,
            rate_bps=rate_bps,
            delay=delay,
            jitter=jitter,
            rng=rng,
        )
