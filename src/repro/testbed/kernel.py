"""Kernel modules of the PlanetLab node.

§2.3: "To add support for the UMTS interfaces we needed to add both
kernel modules and user-space tools.  The kernel modules [...] are
those related to the management of the PPP connection (ppp_generic,
ppp_filter, ppp_async, ppp_sync_tty, ppp_deflate, and ppp_bsdcomp) and
those required by the two NICs, i.e. pl2303 and usbserial for the
Huawei card, and nozomi for the Globetrotter card."

The registry models presence and dependency ordering — what the paper's
patched node distribution ships versus a stock PlanetLab node, where
dialing simply cannot work.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

#: module -> modules it depends on (insmod order constraints).
PLANETLAB_UMTS_MODULES: Dict[str, List[str]] = {
    "ppp_generic": ["slhc"],
    "slhc": [],
    "ppp_filter": ["ppp_generic"],
    "ppp_async": ["ppp_generic", "crc_ccitt"],
    "crc_ccitt": [],
    "ppp_sync_tty": ["ppp_generic"],
    "ppp_deflate": ["ppp_generic", "zlib_deflate"],
    "zlib_deflate": [],
    "ppp_bsdcomp": ["ppp_generic"],
    "usbserial": [],
    "pl2303": ["usbserial"],
    "nozomi": [],
}

#: the PPP set every UMTS-capable node needs regardless of the card.
PPP_MODULE_SET = [
    "ppp_generic",
    "ppp_filter",
    "ppp_async",
    "ppp_sync_tty",
    "ppp_deflate",
    "ppp_bsdcomp",
]

#: card driver -> full driver stack to load.
CARD_MODULE_SETS = {
    "nozomi": ["nozomi"],
    "usbserial": ["usbserial", "pl2303"],
}


class ModuleError(Exception):
    """Unknown module or unmet dependency."""


class KernelModuleRegistry:
    """Tracks which modules are loaded on one node."""

    def __init__(self, available: Optional[Dict[str, List[str]]] = None):
        self.available = dict(available) if available is not None else dict(
            PLANETLAB_UMTS_MODULES
        )
        self._loaded: Set[str] = set()

    def is_loaded(self, name: str) -> bool:
        """Whether ``name`` is currently loaded."""
        return name in self._loaded

    def loaded_modules(self) -> List[str]:
        """Sorted names of loaded modules (``lsmod``)."""
        return sorted(self._loaded)

    def load(self, name: str) -> None:
        """``modprobe``: load ``name`` and its dependencies."""
        if name not in self.available:
            raise ModuleError(f"no such module: {name}")
        for dependency in self.available[name]:
            if not self.is_loaded(dependency):
                self.load(dependency)
        self._loaded.add(name)

    def unload(self, name: str) -> None:
        """``rmmod``: refuse while another loaded module depends on it."""
        if name not in self._loaded:
            raise ModuleError(f"module not loaded: {name}")
        for other in self._loaded:
            if other != name and name in self.available.get(other, []):
                raise ModuleError(f"{name} is in use by {other}")
        self._loaded.remove(name)

    def load_umts_support(self, card_driver: str) -> List[str]:
        """Load the PPP set plus the card's driver stack.

        Returns the list of modules loaded, in order.
        """
        if card_driver not in CARD_MODULE_SETS:
            raise ModuleError(f"unsupported UMTS card driver: {card_driver}")
        before = set(self._loaded)
        for module in PPP_MODULE_SET + CARD_MODULE_SETS[card_driver]:
            self.load(module)
        return [m for m in self.loaded_modules() if m not in before]

    def has_umts_support(self, card_driver: str) -> bool:
        """Whether dialing with this card could work right now."""
        needed = PPP_MODULE_SET + CARD_MODULE_SETS.get(card_driver, ["__missing__"])
        return all(self.is_loaded(m) for m in needed)
