"""The PlanetLab node: stack + VServer slivers + vsys + UMTS hardware.

A :class:`PlanetLabNode` composes everything a real node runs: the
network stack with its wired interface, the vsys daemon, slivers of
the slices instantiated on it, the kernel module registry, and — once
:meth:`install_umts_card` is called — the modem, connection manager and
the ``umts`` vsys back-end from :mod:`repro.core`.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from repro.core.backend import SCRIPT_NAME, UmtsBackend
from repro.core.connection import UmtsConnectionManager
from repro.core.errors import HardwareMissingError
from repro.core.isolation import IsolationManager
from repro.modem.device import Modem3G
from repro.net.interface import EthernetInterface
from repro.net.stack import IPStack
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.testbed.internet import Internet
from repro.testbed.kernel import KernelModuleRegistry
from repro.umts.cell import UmtsCell
from repro.vserver.slice import Slice, Sliver
from repro.vserver.vnet import VnetPlus
from repro.vsys.daemon import VsysDaemon


class PlanetLabNode:
    """One node of the (simulated) Private OneLab testbed."""

    def __init__(self, sim: Simulator, name: str, streams: RandomStreams):
        self.sim = sim
        self.name = name
        self.streams = streams
        self.stack = IPStack(sim, name)
        self.vnet = VnetPlus(self.stack)
        self.vsys = VsysDaemon(sim, name)
        self.kernel = KernelModuleRegistry()
        self.slivers: Dict[str, Sliver] = {}
        self.bwlimiter = None
        self.modem: Optional[Modem3G] = None
        self.connection: Optional[UmtsConnectionManager] = None
        self.isolation: Optional[IsolationManager] = None
        self.umts_backend: Optional[UmtsBackend] = None

    # -- wired connectivity ------------------------------------------------

    def attach_lan(
        self,
        internet: Internet,
        address: str,
        gateway: str,
        prefix_len: int = 24,
        rate_bps: float = 100e6,
        delay: float = 0.002,
        jitter=None,
        bwlimit_rate_bps: float = 10_000_000.0,
    ):
        """Give the node its Ethernet uplink through the Internet core.

        Sets the node's address, the subnet's router address, and the
        default route via the gateway — the standard PlanetLab setup
        where ``eth0`` carries both control and experiment traffic,
        including PlanetLab's per-slice egress cap (``bwlimit``, 10
        Mbit/s per slice by default; pass ``None`` to disable).
        """
        eth = self.stack.add_interface(EthernetInterface("eth0"))
        self.stack.configure_interface(eth, address, prefix_len)
        link = internet.attach(
            eth,
            gateway,
            prefix_len,
            rate_bps=rate_bps,
            delay=delay,
            jitter=jitter,
            rng=self.streams.stream(f"{self.name}.lan") if jitter else None,
            name=f"to-{self.name}",
        )
        self.stack.ip.route_add("default", "eth0", via=gateway)
        self.bwlimiter = None
        if bwlimit_rate_bps is not None:
            self.bwlimiter = self.stack.install_bwlimiter(
                "eth0", default_rate_bps=bwlimit_rate_bps
            )
        return link

    @property
    def address(self) -> Optional[str]:
        """The node's eth0 address, once attached."""
        eth = self.stack.interfaces.get("eth0")
        return str(eth.address) if eth is not None and eth.address else None

    # -- slices -------------------------------------------------------------

    def create_sliver(self, slice_: Slice) -> Sliver:
        """Instantiate a slice on this node."""
        if slice_.name in self.slivers:
            raise ValueError(f"slice {slice_.name!r} already on {self.name}")
        sliver = Sliver(slice_, self.name, self.stack, self.vsys)
        self.slivers[slice_.name] = sliver
        return sliver

    def resolve_xid(self, slice_name: str) -> int:
        """Map a slice name to its VServer context id (for the back-end)."""
        return self.slivers[slice_name].xid

    # -- UMTS hardware ---------------------------------------------------------

    def install_umts_card(
        self,
        card_cls: Type[Modem3G],
        cell: UmtsCell,
        apn: str,
        pin: Optional[str] = None,
        load_modules: bool = True,
    ) -> UmtsBackend:
        """Plug a UMTS card in and register the ``umts`` vsys script.

        ``load_modules=False`` models a stock PlanetLab node without the
        paper's kernel patches: installation fails with
        :class:`HardwareMissingError`.
        """
        if self.umts_backend is not None:
            raise HardwareMissingError(f"{self.name} already has a UMTS card")
        driver = card_cls.required_module
        if load_modules:
            self.kernel.load_umts_support(driver)
        if not self.kernel.has_umts_support(driver):
            raise HardwareMissingError(
                f"{self.name}: kernel lacks PPP/{driver} modules "
                "(stock PlanetLab kernel — the paper's patches are required)"
            )
        self.modem = card_cls(
            self.sim, sim_pin=pin, rng=self.streams.stream(f"{self.name}.modem")
        )
        self.modem.plug_into(cell)
        self.connection = UmtsConnectionManager(
            self.sim,
            self.stack,
            self.modem,
            apn=apn,
            pin=pin,
            streams=self.streams.fork(f"{self.name}.umts"),
        )
        self.isolation = IsolationManager(self.stack)
        self.umts_backend = UmtsBackend(
            self.sim,
            self.connection,
            self.isolation,
            resolve_xid=self.resolve_xid,
        )
        self.vsys.register(SCRIPT_NAME, self.umts_backend.handler, acl=[])
        return self.umts_backend

    def authorize_umts(self, slice_name: str) -> None:
        """Add a slice to the umts script's vsys ACL."""
        if self.umts_backend is None:
            raise HardwareMissingError(f"{self.name} has no UMTS card installed")
        self.vsys.allow(SCRIPT_NAME, slice_name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        umts = "umts" if self.umts_backend is not None else "no-umts"
        return f"<PlanetLabNode {self.name} {umts} slivers={sorted(self.slivers)}>"
