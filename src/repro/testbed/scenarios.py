"""The canonical OneLab scenario of §3.

Two PlanetLab nodes — one at the authors' laboratory in Napoli
(UMTS-equipped, Option Globetrotter card) and one at INRIA
Sophia-Antipolis — joined by the research network, plus the UMTS
operator whose cell the Napoli card camps on.  One slice,
``unina_umts``, is instantiated on both nodes and authorized for the
``umts`` vsys script on the Napoli node.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.frontend import UmtsCommand
from repro.modem.cards import GlobetrotterGT3G
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams, UniformVariate
from repro.testbed.internet import Internet
from repro.testbed.planetlab import PlanetLabNode
from repro.umts.operator import UmtsOperator, commercial_operator
from repro.vserver.slice import Slice

#: Addresses used throughout the scenario (UNINA and INRIA prefixes).
NAPOLI_PREFIX = "143.225.229.0/24"
NAPOLI_NODE_ADDR = "143.225.229.100"
NAPOLI_GW_ADDR = "143.225.229.1"
INRIA_PREFIX = "138.96.250.0/24"
INRIA_NODE_ADDR = "138.96.250.100"
INRIA_GW_ADDR = "138.96.250.1"
GGSN_PUBLIC_ADDR = "85.37.17.2"
GGSN_ROUTER_ADDR = "85.37.17.1"

DEFAULT_SLICE_NAME = "unina_umts"
DEFAULT_SLICE_XID = 510


class OneLabScenario:
    """The two-node testbed with UMTS access on the Napoli side."""

    def __init__(
        self,
        seed: int = 0,
        operator_factory: Callable[..., UmtsOperator] = commercial_operator,
        card_cls=GlobetrotterGT3G,
        slice_name: str = DEFAULT_SLICE_NAME,
        slice_xid: int = DEFAULT_SLICE_XID,
        ethernet_one_way_delay: float = 0.009,
    ):
        self.sim = Simulator()
        self.streams = RandomStreams(seed)
        self.seed = seed
        self.internet = Internet(self.sim)
        # The UMTS operator and its radio cell.
        self.operator = operator_factory(self.sim, self.streams)
        self.cell = self.operator.new_cell()
        self.operator.connect_to_internet(
            self.internet.router, GGSN_PUBLIC_ADDR, GGSN_ROUTER_ADDR
        )
        # The two PlanetLab nodes on their GREN tails.  The WAN delay
        # is split between them; tiny jitter keeps the Ethernet path
        # realistic but visibly flatter than UMTS (as in the figures).
        self.napoli = PlanetLabNode(self.sim, "onelab1.dis.unina.it", self.streams)
        self.napoli.attach_lan(
            self.internet,
            NAPOLI_NODE_ADDR,
            NAPOLI_GW_ADDR,
            delay=ethernet_one_way_delay / 3,
            jitter=UniformVariate(0.0, 0.0004),
        )
        self.inria = PlanetLabNode(self.sim, "onelab03.inria.fr", self.streams)
        self.inria.attach_lan(
            self.internet,
            INRIA_NODE_ADDR,
            INRIA_GW_ADDR,
            delay=ethernet_one_way_delay * 2 / 3,
            jitter=UniformVariate(0.0, 0.0004),
        )
        # The experiment slice, instantiated on both nodes.
        self.slice = Slice(slice_name, slice_xid)
        self.napoli_sliver = self.napoli.create_sliver(self.slice)
        self.inria_sliver = self.inria.create_sliver(self.slice)
        # UMTS hardware on the Napoli node, authorized for the slice.
        self.napoli.install_umts_card(card_cls, self.cell, apn=self.operator.apn)
        self.napoli.authorize_umts(slice_name)
        # The operator's DNS knows the testbed's names, so mobiles can
        # resolve nodes via the server IPCP pushed (dns1).
        self.operator.dns.add_record(self.napoli.name, NAPOLI_NODE_ADDR)
        self.operator.dns.add_record(self.inria.name, INRIA_NODE_ADDR)

    def add_umts_node(
        self,
        name: str,
        node_address: str,
        gateway_address: str,
        prefix_len: int = 24,
        card_cls=GlobetrotterGT3G,
        authorize_slice: bool = True,
    ) -> PlanetLabNode:
        """Equip another PlanetLab site with UMTS on the same operator.

        This is the paper's stated goal — "to provide every node of the
        testbed with the possibility of using a UMTS interface" — so
        scenarios can grow extra UMTS-capable nodes: each gets its own
        LAN tail, its own 3G card camping on a new cell of the same
        operator, a sliver of the experiment slice, and (by default)
        authorization for the ``umts`` vsys script.
        """
        node = PlanetLabNode(self.sim, name, self.streams.fork(name))
        node.attach_lan(
            self.internet,
            node_address,
            gateway_address,
            prefix_len=prefix_len,
            jitter=UniformVariate(0.0, 0.0004),
        )
        node.create_sliver(self.slice)
        cell = self.operator.new_cell()
        node.install_umts_card(card_cls, cell, apn=self.operator.apn)
        if authorize_slice:
            node.authorize_umts(self.slice.name)
        return node

    @property
    def napoli_addr(self) -> str:
        """Napoli node's Ethernet address."""
        return NAPOLI_NODE_ADDR

    @property
    def inria_addr(self) -> str:
        """INRIA node's Ethernet address."""
        return INRIA_NODE_ADDR

    def umts_command(self) -> UmtsCommand:
        """The ``umts`` front-end as the slice sees it on Napoli."""
        return UmtsCommand(self.napoli_sliver)

    def umts_address(self) -> Optional[str]:
        """The operator-assigned mobile address, while up."""
        return self.napoli.connection.address()
