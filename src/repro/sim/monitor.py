"""Time-series recording and windowed aggregation.

The paper reports every QoS parameter as "average values calculated
over non-overlapping windows of 200 milliseconds".  :class:`TimeSeries`
stores raw (time, value) samples; :meth:`TimeSeries.window_average` and
friends produce exactly that kind of windowed series, which the benches
print as the figures' data rows.

The standard aggregations (mean/sum/count) stream through
:class:`repro.obs.streaming.StreamingWindows` — constant memory beyond
the output, same floats as the historical bucket-table implementation.
:meth:`TimeSeries.window_aggregate` keeps the buffered path for
arbitrary aggregation callables.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence, Tuple

from repro.obs.streaming import StreamingWindows


class TimeSeries:
    """An append-only sequence of (time, value) samples."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def __len__(self) -> int:
        return len(self.times)

    def add(self, time: float, value: float) -> None:
        """Append a sample.  Times must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"sample at {time!r} is earlier than previous {self.times[-1]!r}"
            )
        self.times.append(time)
        self.values.append(value)

    def _finite(self) -> List[float]:
        """Values excluding NaN placeholders from empty windows."""
        return [v for v in self.values if v == v]

    def mean(self) -> float:
        """Arithmetic mean of the (non-NaN) values; NaN when empty."""
        values = self._finite()
        if not values:
            return math.nan
        return sum(values) / len(values)

    def maximum(self) -> float:
        """Largest (non-NaN) value; NaN when empty."""
        values = self._finite()
        if not values:
            return math.nan
        return max(values)

    def minimum(self) -> float:
        """Smallest (non-NaN) value; NaN when empty."""
        values = self._finite()
        if not values:
            return math.nan
        return min(values)

    def stdev(self) -> float:
        """Population standard deviation of the (non-NaN) values.

        A single sample has zero spread; only an empty series is NaN.
        """
        values = self._finite()
        if not values:
            return math.nan
        mu = self.mean()
        return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))

    def between(self, start: float, end: float) -> "TimeSeries":
        """Sub-series with start <= time < end."""
        out = TimeSeries(self.name)
        for t, v in zip(self.times, self.values):
            if start <= t < end:
                out.add(t, v)
        return out

    def window_aggregate(
        self,
        window: float,
        func: Callable[[Sequence[float]], float],
        start: float = 0.0,
        end: Optional[float] = None,
        empty_value: float = math.nan,
    ) -> "TimeSeries":
        """Aggregate samples into non-overlapping windows of ``window`` s.

        Each output sample is stamped at the window start.  Windows with
        no samples yield ``empty_value``.
        """
        if window <= 0:
            raise ValueError(f"window must be positive, got {window!r}")
        if end is None:
            end = self.times[-1] + window if self.times else start
        out = TimeSeries(self.name)
        n_windows = max(0, int(math.ceil((end - start) / window)))
        buckets: List[List[float]] = [[] for _ in range(n_windows)]
        for t, v in zip(self.times, self.values):
            if t < start or t >= end:
                continue
            index = int((t - start) / window)
            if index >= n_windows:
                index = n_windows - 1
            buckets[index].append(v)
        for i, bucket in enumerate(buckets):
            value = func(bucket) if bucket else empty_value
            out.add(start + i * window, value)
        return out

    def _window_streaming(
        self, window: float, mode: str, start: float, end: Optional[float]
    ) -> "TimeSeries":
        """Stream the samples through one online window aggregator."""
        if window <= 0:
            raise ValueError(f"window must be positive, got {window!r}")
        if end is None:
            end = self.times[-1] + window if self.times else start
        agg = StreamingWindows(window, mode=mode, start=start, end=end)
        # The series already holds parallel columns: one bulk call
        # replaces a per-sample add() loop on the hot analysis path.
        agg.add_many(self.times, self.values)
        times, values = agg.finish()
        out = TimeSeries(self.name)
        out.times = times
        out.values = values
        return out

    def window_average(
        self, window: float, start: float = 0.0, end: Optional[float] = None
    ) -> "TimeSeries":
        """Windowed arithmetic mean (the paper's reporting method)."""
        return self._window_streaming(window, "mean", start, end)

    def window_sum(
        self, window: float, start: float = 0.0, end: Optional[float] = None
    ) -> "TimeSeries":
        """Windowed sum; empty windows yield 0 (e.g. bytes per window)."""
        return self._window_streaming(window, "sum", start, end)

    def window_count(
        self, window: float, start: float = 0.0, end: Optional[float] = None
    ) -> "TimeSeries":
        """Windowed sample count; empty windows yield 0."""
        return self._window_streaming(window, "count", start, end)

    def as_pairs(self) -> List[Tuple[float, float]]:
        """The series as a list of (time, value) tuples."""
        return list(zip(self.times, self.values))


class Monitor:
    """A named collection of :class:`TimeSeries` owned by one component.

    Components call ``monitor.record("queue_len", now, depth)``; the
    analysis layer later pulls the series out by name.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._series: dict[str, TimeSeries] = {}

    def series(self, key: str) -> TimeSeries:
        """Return (creating if needed) the series for ``key``."""
        if key not in self._series:
            self._series[key] = TimeSeries(f"{self.name}.{key}" if self.name else key)
        return self._series[key]

    def record(self, key: str, time: float, value: float) -> None:
        """Append a sample to the series named ``key``."""
        self.series(key).add(time, value)

    def keys(self) -> List[str]:
        """Names of all recorded series."""
        return sorted(self._series)

    def __contains__(self, key: str) -> bool:
        return key in self._series
