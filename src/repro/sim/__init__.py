"""Discrete-event simulation core.

Everything in the reproduction runs on top of this engine: network
links, PPP negotiation, UMTS radio-bearer timers, and the D-ITG-style
traffic generator all schedule events on a single :class:`Simulator`.

The engine is deliberately small and deterministic:

- a binary heap of timestamped events with a monotonic sequence-number
  tiebreak, so two events at the same instant always fire in the order
  they were scheduled;
- generator-based *processes* (:class:`Process`) for sequential logic
  (``yield 0.5`` sleeps, ``yield signal`` blocks on a
  :class:`Signal`);
- named, independently seeded random streams
  (:class:`RandomStreams`) so every stochastic component of an
  experiment is reproducible from a single integer seed.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.errors import SimulationError
from repro.sim.monitor import Monitor, TimeSeries
from repro.sim.process import Interrupt, Process, Signal, Store, spawn
from repro.sim.rng import (
    CauchyVariate,
    ConstantVariate,
    Distribution,
    ExponentialVariate,
    GammaVariate,
    LogNormalVariate,
    NormalVariate,
    ParetoVariate,
    RandomStreams,
    UniformVariate,
    WeibullVariate,
)

__all__ = [
    "CauchyVariate",
    "ConstantVariate",
    "Distribution",
    "Event",
    "ExponentialVariate",
    "GammaVariate",
    "Interrupt",
    "LogNormalVariate",
    "Monitor",
    "NormalVariate",
    "ParetoVariate",
    "Process",
    "RandomStreams",
    "Signal",
    "SimulationError",
    "Simulator",
    "Store",
    "TimeSeries",
    "UniformVariate",
    "WeibullVariate",
    "spawn",
]
