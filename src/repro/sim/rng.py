"""Seeded random streams and the D-ITG distribution family.

D-ITG draws inter-departure times (IDT) and packet sizes (PS) from a
menu of stochastic processes (constant, uniform, exponential, normal,
Pareto, Cauchy, ...).  This module reproduces that menu as small
:class:`Distribution` objects and provides :class:`RandomStreams`,
which derives an independent, stable ``random.Random`` per named
component from one experiment seed — so "the UMTS channel noise" and
"the VoIP IDT process" never share a stream and every run is exactly
reproducible.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Callable, Dict, Optional


class RandomStreams:
    """A family of named, independently seeded RNGs.

    ``streams.stream("umts.channel")`` always returns the same
    ``random.Random`` object for that name, seeded from
    ``sha256(seed || name)`` so the mapping is stable across runs and
    Python versions.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the RNG for ``name``."""
        stream = self._streams.get(name)
        if stream is None:
            digest = hashlib.sha256(f"{self.seed}/{name}".encode("utf-8")).digest()
            stream = self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return stream

    def fork(self, salt: str) -> "RandomStreams":
        """Derive a child family (e.g. one per experiment repetition)."""
        digest = hashlib.sha256(f"{self.seed}/fork/{salt}".encode("utf-8")).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))


class Distribution:
    """Base class for random variates.

    Subclasses implement :meth:`sample`.  ``low``/``high`` clamp the
    draw, which mirrors how a traffic generator must truncate e.g. a
    normal packet size to [minimum header size, MTU].
    """

    def __init__(self, low: Optional[float] = None, high: Optional[float] = None):
        if low is not None and high is not None and low > high:
            raise ValueError(f"low {low!r} > high {high!r}")
        self.low = low
        self.high = high

    def _draw(self, rng: random.Random) -> float:
        raise NotImplementedError

    def _bound_draw(self, rng: random.Random) -> Callable[[], float]:
        """A zero-argument draw with the RNG method lookups hoisted.

        The default wraps :meth:`_draw`; subclasses override it to
        close over the bound ``random.Random`` method directly so the
        per-sample cost is one call, no attribute lookups.  The draw
        sequence is identical to :meth:`sample` on the same RNG.
        """
        return lambda: self._draw(rng)

    def sample(self, rng: random.Random) -> float:
        """Draw one value, clamped to the configured bounds."""
        value = self._draw(rng)
        if self.low is not None and value < self.low:
            value = self.low
        if self.high is not None and value > self.high:
            value = self.high
        return value

    def sampler(self, rng: random.Random) -> Callable[[], float]:
        """A fast-path sampler bound to ``rng``.

        Equivalent to ``lambda: self.sample(rng)`` — same draws, same
        clamping — but with the RNG method and bound lookups cached in
        the closure, which matters in the traffic senders' per-packet
        loop.
        """
        draw = self._bound_draw(rng)
        low = self.low
        high = self.high
        if low is None and high is None:
            return draw

        def clamped() -> float:
            value = draw()
            if low is not None and value < low:
                value = low
            if high is not None and value > high:
                value = high
            return value

        return clamped

    def mean(self) -> float:
        """Theoretical mean where defined; used by flow-spec sanity checks."""
        raise NotImplementedError


class ConstantVariate(Distribution):
    """Degenerate distribution: always ``value`` (CBR traffic)."""

    def __init__(self, value: float):
        super().__init__()
        self.value = float(value)

    def _draw(self, rng: random.Random) -> float:
        return self.value

    def _bound_draw(self, rng: random.Random) -> Callable[[], float]:
        value = self.value
        return lambda: value

    def mean(self) -> float:
        """Theoretical mean of the distribution."""
        return self.value

    def __repr__(self) -> str:
        return f"ConstantVariate({self.value!r})"


class UniformVariate(Distribution):
    """Uniform on [a, b]."""

    def __init__(self, a: float, b: float):
        if a > b:
            raise ValueError(f"uniform bounds reversed: {a!r} > {b!r}")
        super().__init__()
        self.a = float(a)
        self.b = float(b)

    def _draw(self, rng: random.Random) -> float:
        return rng.uniform(self.a, self.b)

    def _bound_draw(self, rng: random.Random) -> Callable[[], float]:
        uniform, a, b = rng.uniform, self.a, self.b
        return lambda: uniform(a, b)

    def mean(self) -> float:
        """Theoretical mean of the distribution."""
        return (self.a + self.b) / 2.0

    def __repr__(self) -> str:
        return f"UniformVariate({self.a!r}, {self.b!r})"


class ExponentialVariate(Distribution):
    """Exponential with the given mean (Poisson traffic IDT)."""

    def __init__(self, mean: float, low: Optional[float] = None, high: Optional[float] = None):
        if mean <= 0:
            raise ValueError(f"exponential mean must be positive, got {mean!r}")
        super().__init__(low=low, high=high)
        self._mean = float(mean)

    def _draw(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self._mean)

    def _bound_draw(self, rng: random.Random) -> Callable[[], float]:
        expovariate, lambd = rng.expovariate, 1.0 / self._mean
        return lambda: expovariate(lambd)

    def mean(self) -> float:
        """Theoretical mean of the distribution."""
        return self._mean

    def __repr__(self) -> str:
        return f"ExponentialVariate(mean={self._mean!r})"


class NormalVariate(Distribution):
    """Gaussian with mean ``mu`` and standard deviation ``sigma``."""

    def __init__(
        self,
        mu: float,
        sigma: float,
        low: Optional[float] = None,
        high: Optional[float] = None,
    ):
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma!r}")
        super().__init__(low=low, high=high)
        self.mu = float(mu)
        self.sigma = float(sigma)

    def _draw(self, rng: random.Random) -> float:
        return rng.gauss(self.mu, self.sigma)

    def _bound_draw(self, rng: random.Random) -> Callable[[], float]:
        gauss, mu, sigma = rng.gauss, self.mu, self.sigma
        return lambda: gauss(mu, sigma)

    def mean(self) -> float:
        """Theoretical mean of the distribution."""
        return self.mu

    def __repr__(self) -> str:
        return f"NormalVariate(mu={self.mu!r}, sigma={self.sigma!r})"


class ParetoVariate(Distribution):
    """Pareto with shape ``alpha`` and scale ``xm`` (heavy-tailed sizes)."""

    def __init__(
        self,
        alpha: float,
        xm: float,
        low: Optional[float] = None,
        high: Optional[float] = None,
    ):
        if alpha <= 0 or xm <= 0:
            raise ValueError(f"alpha and xm must be positive, got {alpha!r}, {xm!r}")
        super().__init__(low=low, high=high)
        self.alpha = float(alpha)
        self.xm = float(xm)

    def _draw(self, rng: random.Random) -> float:
        return self.xm * rng.paretovariate(self.alpha)

    def _bound_draw(self, rng: random.Random) -> Callable[[], float]:
        paretovariate, alpha, xm = rng.paretovariate, self.alpha, self.xm
        return lambda: xm * paretovariate(alpha)

    def mean(self) -> float:
        """Theoretical mean (infinite for shape alpha <= 1)."""
        if self.alpha <= 1.0:
            return math.inf
        return self.alpha * self.xm / (self.alpha - 1.0)

    def __repr__(self) -> str:
        return f"ParetoVariate(alpha={self.alpha!r}, xm={self.xm!r})"


class CauchyVariate(Distribution):
    """Cauchy with location ``x0`` and scale ``gamma``.

    The Cauchy distribution has no mean; callers must clamp it with
    ``low``/``high`` to use it for IDT or PS (as D-ITG does).
    """

    def __init__(
        self,
        x0: float,
        gamma: float,
        low: Optional[float] = None,
        high: Optional[float] = None,
    ):
        if gamma <= 0:
            raise ValueError(f"gamma must be positive, got {gamma!r}")
        super().__init__(low=low, high=high)
        self.x0 = float(x0)
        self.gamma = float(gamma)

    def _draw(self, rng: random.Random) -> float:
        # Inverse-CDF sampling; avoid u == 0.5 singularity neighbours safely.
        u = rng.random()
        return self.x0 + self.gamma * math.tan(math.pi * (u - 0.5))

    def mean(self) -> float:
        """Theoretical mean of the distribution."""
        return math.nan

    def __repr__(self) -> str:
        return f"CauchyVariate(x0={self.x0!r}, gamma={self.gamma!r})"


class WeibullVariate(Distribution):
    """Weibull with scale ``lam`` and shape ``k``."""

    def __init__(
        self,
        lam: float,
        k: float,
        low: Optional[float] = None,
        high: Optional[float] = None,
    ):
        if lam <= 0 or k <= 0:
            raise ValueError(f"lam and k must be positive, got {lam!r}, {k!r}")
        super().__init__(low=low, high=high)
        self.lam = float(lam)
        self.k = float(k)

    def _draw(self, rng: random.Random) -> float:
        return rng.weibullvariate(self.lam, self.k)

    def mean(self) -> float:
        """Theoretical mean of the distribution."""
        return self.lam * math.gamma(1.0 + 1.0 / self.k)

    def __repr__(self) -> str:
        return f"WeibullVariate(lam={self.lam!r}, k={self.k!r})"


class GammaVariate(Distribution):
    """Gamma with shape ``k`` and scale ``theta``."""

    def __init__(
        self,
        k: float,
        theta: float,
        low: Optional[float] = None,
        high: Optional[float] = None,
    ):
        if k <= 0 or theta <= 0:
            raise ValueError(f"k and theta must be positive, got {k!r}, {theta!r}")
        super().__init__(low=low, high=high)
        self.k = float(k)
        self.theta = float(theta)

    def _draw(self, rng: random.Random) -> float:
        return rng.gammavariate(self.k, self.theta)

    def mean(self) -> float:
        """Theoretical mean of the distribution."""
        return self.k * self.theta

    def __repr__(self) -> str:
        return f"GammaVariate(k={self.k!r}, theta={self.theta!r})"


class LogNormalVariate(Distribution):
    """Log-normal whose underlying normal has mean ``mu``, stdev ``sigma``."""

    def __init__(
        self,
        mu: float,
        sigma: float,
        low: Optional[float] = None,
        high: Optional[float] = None,
    ):
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma!r}")
        super().__init__(low=low, high=high)
        self.mu = float(mu)
        self.sigma = float(sigma)

    def _draw(self, rng: random.Random) -> float:
        return rng.lognormvariate(self.mu, self.sigma)

    def mean(self) -> float:
        """Theoretical mean of the distribution."""
        return math.exp(self.mu + self.sigma * self.sigma / 2.0)

    def __repr__(self) -> str:
        return f"LogNormalVariate(mu={self.mu!r}, sigma={self.sigma!r})"
