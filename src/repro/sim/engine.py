"""The discrete-event engine.

A :class:`Simulator` owns a virtual clock and a priority queue of
:class:`Event` objects.  Components schedule callbacks with
:meth:`Simulator.schedule` (relative delay) or
:meth:`Simulator.schedule_at` (absolute time) and the main loop
dispatches them in timestamp order.  Ties are broken by insertion
order, which keeps runs bit-for-bit deterministic.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Any, Callable, List, Optional

from repro.sim.errors import ScheduleInPastError

#: Histogram edges for per-event wall-clock dispatch cost (seconds).
DISPATCH_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1)


class Event:
    """A scheduled callback.

    Events are created by the simulator; user code holds them only to
    :meth:`cancel` them.  A cancelled event stays in the heap but is
    skipped when popped (lazy deletion), which keeps cancellation O(1).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} seq={self.seq} {state}>"


class Simulator:
    """Single-threaded discrete-event simulator.

    The clock starts at ``0.0`` and only moves forward, driven by the
    timestamps of dispatched events.  Time is measured in **seconds**
    throughout the code base.

    Example::

        sim = Simulator()
        sim.schedule(1.0, print, "one second elapsed")
        sim.run(until=10.0)
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        #: optional :class:`~repro.obs.TraceBus`; components check this
        #: before emitting, so ``None`` keeps the stack uninstrumented.
        self.trace = None
        #: optional :class:`~repro.obs.MetricsRegistry` (same contract).
        self.metrics = None
        #: optional ``callback(event, wall_seconds)`` run after each dispatch.
        self.on_dispatch: Optional[Callable[[Event, float], None]] = None

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which can be cancelled.  A negative
        delay raises :class:`ScheduleInPastError`.
        """
        if delay < 0:
            raise ScheduleInPastError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at the absolute time ``time``."""
        if time < self._now:
            raise ScheduleInPastError(
                f"cannot schedule at {time!r}; clock already at {self._now!r}"
            )
        event = Event(time, next(self._seq), callback, args)
        heapq.heappush(self._heap, event)
        return event

    def stop(self) -> None:
        """Make :meth:`run` return after the event being dispatched."""
        self._stopped = True

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def step(self) -> bool:
        """Dispatch the next event.  Returns ``False`` if none remained."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            if self.metrics is None and self.on_dispatch is None:
                event.callback(*event.args)
            else:
                self._dispatch_instrumented(event)
            return True
        return False

    def _dispatch_instrumented(self, event: Event) -> None:
        """Dispatch one event under timing/metrics instrumentation."""
        start = time.perf_counter()
        event.callback(*event.args)
        elapsed = time.perf_counter() - start
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("engine.events_dispatched").inc()
            metrics.histogram("engine.dispatch_wall_seconds", DISPATCH_BUCKETS).observe(
                elapsed
            )
            metrics.gauge("engine.queue_depth").set(len(self._heap))
        if self.on_dispatch is not None:
            self.on_dispatch(event, elapsed)

    def run(self, until: Optional[float] = None) -> float:
        """Run the event loop.

        With ``until=None`` the loop drains the queue completely.  With a
        deadline, events strictly after ``until`` are left pending and
        the clock is advanced exactly to ``until``.  Returns the final
        clock value.
        """
        self._running = True
        self._stopped = False
        try:
            while not self._stopped:
                next_time = self.peek()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still queued (O(n))."""
        return sum(1 for event in self._heap if not event.cancelled)
