"""The discrete-event engine: a shared kernel for fleet-scale groups.

A :class:`Simulator` owns a virtual clock and a time-bucketed event
store.  Components schedule callbacks with :meth:`Simulator.schedule`
(relative delay), :meth:`Simulator.schedule_at` (absolute time) or
:meth:`Simulator.post` (fire-and-forget, no handle) and the main loop
dispatches them in timestamp order.  Ties are broken by insertion
order, which keeps runs bit-for-bit deterministic.

Storage is bucketed rather than heap-of-objects: the heap orders bare
``float`` timestamps (so every sift compares machine floats in C, the
cheapest possible key), and a dict maps each distinct pending
timestamp to a flat ``[callback, args, callback, args, ...]`` *bucket*
holding that instant's events in insertion order.  A whole bucket is
dispatched per heap pop — at fleet scale, where hundreds of nodes
share TTI-aligned radio instants, that amortises the heap to a few
hundred pops per simulated second no matter how many datacalls ride
the kernel.

Cancellation tombstones the bucket cell in place: an :class:`Event`
handle captures the bucket list and the index its callback occupies,
and :meth:`Event.cancel` overwrites both cells with ``None`` —
dropping the callback/argument references immediately — and decrements
the O(1) live-event census (:attr:`Simulator.pending_count`, the
``engine.queue_depth`` gauge).  The dispatch loop likewise overwrites
each callback cell as it fires, so a cancel that lands after the event
ran is a natural no-op, a cancelled cell is skipped by one ``is None``
test, and nothing cancelled ever reaches — or lingers in — the heap:
the classic lazy-deletion pile of dead heap entries cannot form.

:meth:`Simulator.run` has two loops.  The **fast path** runs when
``trace``, ``metrics``, ``profile`` and ``on_dispatch`` are all
``None`` (the observability layer's no-sink contract): no
``time.perf_counter`` pair, no histogram update.  The instrumented
loop is the *same* single-scan batch loop — the historic
``peek()``/``step()`` double scan is gone — with per-event
instrumentation on top: metric handles are resolved once per registry
(not per event), and profiler attribution happens through interned
event-type ids (one hash of the callback on first sight, list indexing
afterwards) instead of hashing callback objects on every dispatch.
Both loops dispatch events in exactly the same order, so instrumented
and uninstrumented runs are bit-for-bit identical.
"""

from __future__ import annotations

import heapq
import math
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sim.errors import ScheduleInPastError

#: Histogram edges for per-event wall-clock dispatch cost (seconds).
DISPATCH_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1)

# Module-level aliases: the schedulers run once per event, where even a
# ``heapq.``-attribute load shows up at fleet volume.
_heappush = heapq.heappush
_heappop = heapq.heappop


class Event:
    """A cancellation handle for one scheduled callback.

    Events are created by the simulator; user code holds them only to
    :meth:`cancel` them.  The handle captures the bucket list and the
    index its callback occupies: cancelling tombstones both cells to
    ``None`` in O(1), dropping the callback/argument references on the
    spot, and dispatch skips the dead cell with one ``is None`` test.
    The dispatch loop tombstones the callback cell as it fires too, so
    a handle whose event already ran cancels as a harmless no-op —
    there is no recycled storage a stale handle could alias.
    """

    __slots__ = ("_sim", "_bucket", "_idx")

    def __init__(self, sim: "Simulator", bucket: List[Any], idx: int) -> None:
        self._sim = sim
        self._bucket = bucket
        self._idx = idx

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; a cancel that
        lands after the event already fired is a harmless no-op."""
        bucket = self._bucket
        idx = self._idx
        if bucket[idx] is not None:
            bucket[idx] = None
            bucket[idx + 1] = None
            self._sim._live -= 1

    @property
    def pending(self) -> bool:
        """Whether the event is still scheduled (not fired, not cancelled)."""
        return self._bucket[self._idx] is not None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending" if self.pending else "done"
        return f"<Event idx={self._idx} {state}>"


class _DispatchRecord:
    """An Event-shaped view of one dispatch, for ``on_dispatch`` hooks
    and legacy profiler ``record(event, ...)`` implementations."""

    __slots__ = ("time", "callback", "args")

    def __init__(
        self, time: float, callback: Callable[..., Any], args: Tuple[Any, ...]
    ) -> None:
        self.time = time
        self.callback = callback
        self.args = args


class Simulator:
    """Single-threaded discrete-event simulator.

    The clock starts at ``0.0`` and only moves forward, driven by the
    timestamps of dispatched events.  Time is measured in **seconds**
    throughout the code base.

    Example::

        sim = Simulator()
        sim.schedule(1.0, print, "one second elapsed")
        sim.run(until=10.0)
    """

    def __init__(self) -> None:
        self._now = 0.0
        #: heap of pending timestamps (bare floats; may hold a
        #: duplicate when a bucket is re-created at the active instant).
        self._times: List[float] = []
        #: distinct timestamp -> flat ``[callback, args, ...]`` bucket in
        #: insertion order; cancelled/fired cells are tombstoned ``None``.
        self._buckets: Dict[float, List[Any]] = {}
        #: O(1) census of scheduled, not-yet-fired, not-cancelled events.
        self._live = 0
        #: a partially dispatched batch left by ``stop()``:
        #: ``(time, bucket, resume_index)``.
        self._active: Optional[Tuple[float, List[Any], int]] = None
        self._running = False
        self._stopped = False
        #: optional :class:`~repro.obs.TraceBus`; components check this
        #: before emitting, so ``None`` keeps the stack uninstrumented.
        self.trace: Optional[Any] = None
        #: optional :class:`~repro.obs.MetricsRegistry` (same contract).
        self.metrics: Optional[Any] = None
        #: optional ``callback(event, wall_seconds)`` run after each dispatch.
        self.on_dispatch: Optional[Callable[[Any, float], None]] = None
        #: optional :class:`~repro.obs.SimProfiler` fed once per dispatch
        #: (same zero-cost-when-``None`` contract as ``metrics``).
        self.profile: Optional[Any] = None
        #: optional :class:`~repro.faults.FaultRegistry`; injection
        #: points check this before consulting fault plans, so ``None``
        #: keeps unfaulted runs bit-identical.
        self.faults: Optional[Any] = None
        # Per-registry / per-profiler instrumentation caches: metric
        # handles are resolved once per attached registry, and event
        # types are interned once per callback per attached profiler.
        self._metrics_src: Optional[Any] = None
        self._m_dispatched: Any = None
        self._m_wall: Any = None
        self._m_depth: Any = None
        self._prof_src: Optional[Any] = None
        self._prof_intern: Dict[Any, int] = {}
        self._prof_legacy = False

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    # -- scheduling --------------------------------------------------------
    #
    # The bucket-insert sequence is spelled out inline in all four
    # entry points: one Python call frame per scheduled event is
    # measurable at fleet volume, and these four bodies are the only
    # copies.

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which can be cancelled.  A negative
        (or NaN) delay raises :class:`ScheduleInPastError`.
        """
        if not delay >= 0:  # rejects negatives and NaN in one comparison
            raise ScheduleInPastError(f"negative delay {delay!r}")
        when = self._now + delay
        bucket = self._buckets.get(when)
        if bucket is None:
            bucket = [callback, args]
            self._buckets[when] = bucket
            _heappush(self._times, when)
            idx = 0
        else:
            idx = len(bucket)
            bucket.append(callback)
            bucket.append(args)
        self._live += 1
        return Event(self, bucket, idx)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at the absolute time ``time``.

        A time earlier than the clock — or NaN, which would silently
        corrupt the queue ordering — raises :class:`ScheduleInPastError`.
        """
        if not time >= self._now:
            if math.isnan(time):
                raise ScheduleInPastError(f"cannot schedule at NaN time {time!r}")
            raise ScheduleInPastError(
                f"cannot schedule at {time!r}; clock already at {self._now!r}"
            )
        bucket = self._buckets.get(time)
        if bucket is None:
            bucket = [callback, args]
            self._buckets[time] = bucket
            _heappush(self._times, time)
            idx = 0
        else:
            idx = len(bucket)
            bucket.append(callback)
            bucket.append(args)
        self._live += 1
        return Event(self, bucket, idx)

    def post(self, delay: float, callback: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no :class:`Event` handle.

        The hot-path variant for call sites that never cancel — signal
        fan-out, store hand-offs, process resumes — saving one handle
        allocation per event.  Semantics are otherwise identical to
        :meth:`schedule`, including the dispatch-order tie-break.
        """
        if not delay >= 0:
            raise ScheduleInPastError(f"negative delay {delay!r}")
        when = self._now + delay
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [callback, args]
            _heappush(self._times, when)
        else:
            bucket.append(callback)
            bucket.append(args)
        self._live += 1

    def post_at(self, time: float, callback: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule_at`: no :class:`Event` handle.

        The absolute-time twin of :meth:`post`, for grid-aligned work
        (TTI deliveries, frame boundaries) whose timestamps must be
        computed once and shared exactly across many schedulers rather
        than re-derived through ``now + delay`` float arithmetic.
        """
        if not time >= self._now:
            if math.isnan(time):
                raise ScheduleInPastError(f"cannot schedule at NaN time {time!r}")
            raise ScheduleInPastError(
                f"cannot schedule at {time!r}; clock already at {self._now!r}"
            )
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [callback, args]
            _heappush(self._times, time)
        else:
            bucket.append(callback)
            bucket.append(args)
        self._live += 1

    def stop(self) -> None:
        """Make :meth:`run` return after the event being dispatched."""
        self._stopped = True

    # -- introspection -----------------------------------------------------

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        active = self._active
        if active is not None:
            when, bucket, i = active
            n = len(bucket)
            while i < n:
                if bucket[i] is not None:
                    return when
                i += 2
            self._active = None  # every remaining entry was cancelled
        times = self._times
        buckets = self._buckets
        while times:
            head = times[0]
            bucket = buckets.get(head)
            if bucket is None:  # duplicate timestamp, bucket already taken
                _heappop(times)
                continue
            for i in range(0, len(bucket), 2):
                if bucket[i] is not None:
                    return head
            _heappop(times)  # all-stale bucket: drop it whole
            del buckets[head]
        return None

    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return self._live

    # -- dispatch ----------------------------------------------------------

    def step(self) -> bool:
        """Dispatch the next event.  Returns ``False`` if none remained."""
        while True:
            active = self._active
            if active is not None:
                when, bucket, i = active
                n = len(bucket)
                while i < n:
                    cb = bucket[i]
                    args = bucket[i + 1]
                    i += 2
                    if cb is None:  # cancelled: tombstoned cell
                        continue
                    bucket[i - 2] = None  # fired: a late cancel is a no-op
                    self._active = (when, bucket, i) if i < n else None
                    self._fire(when, cb, args)
                    return True
                self._active = None
            times = self._times
            if not times:
                return False
            when = _heappop(times)
            bucket = self._buckets.pop(when, None)
            if bucket is not None:
                self._active = (when, bucket, 0)

    def _fire(self, when: float, cb: Callable[..., Any], args: Tuple[Any, ...]) -> None:
        """Fire one live event (shared by :meth:`step`'s single-step path)."""
        self._now = when
        self._live -= 1
        if self.metrics is None and self.on_dispatch is None and self.profile is None:
            cb(*args)
        else:
            self._dispatch_instrumented(cb, args)

    def _dispatch_instrumented(
        self, cb: Callable[..., Any], args: Tuple[Any, ...]
    ) -> None:
        """Dispatch one event under timing/metrics instrumentation."""
        start = time.perf_counter()
        cb(*args)
        elapsed = time.perf_counter() - start
        metrics = self.metrics
        if metrics is not None:
            if metrics is not self._metrics_src:
                self._metrics_src = metrics
                self._m_dispatched = metrics.counter("engine.events_dispatched")
                self._m_wall = metrics.histogram(
                    "engine.dispatch_wall_seconds", DISPATCH_BUCKETS
                )
                self._m_depth = metrics.gauge("engine.queue_depth")
            self._m_dispatched.inc()
            self._m_wall.observe(elapsed)
            self._m_depth.set(self._live)
        profile = self.profile
        if profile is not None:
            if profile is not self._prof_src:
                self._prof_src = profile
                self._prof_intern = {}
                self._prof_legacy = not hasattr(profile, "record_typed")
            if self._prof_legacy:
                profile.record(_DispatchRecord(self._now, cb, args), self._now, elapsed)
            else:
                intern = self._prof_intern
                try:
                    tid: Optional[int] = intern.get(cb)
                except TypeError:  # unhashable callback: re-register (rare)
                    tid = None
                else:
                    if tid is None:
                        tid = profile.register_type(cb)
                        intern[cb] = tid
                if tid is None:
                    tid = profile.register_type(cb)
                profile.record_typed(tid, self._now, elapsed)
        if self.on_dispatch is not None:
            self.on_dispatch(_DispatchRecord(self._now, cb, args), elapsed)

    def run(self, until: Optional[float] = None) -> float:
        """Run the event loop.

        With ``until=None`` the loop drains the queue completely.  With a
        deadline, events strictly after ``until`` are left pending and
        the clock is advanced exactly to ``until``.  Returns the final
        clock value.

        When ``trace``, ``metrics``, ``profile`` and ``on_dispatch``
        are all ``None`` a tight fast path is used; dispatch order is
        identical either way.
        """
        self._running = True
        self._stopped = False
        try:
            if (
                self.trace is None
                and self.metrics is None
                and self.on_dispatch is None
                and self.profile is None
            ):
                self._run_fast(until)
            else:
                self._run_instrumented(until)
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def _run_fast(self, until: Optional[float]) -> None:
        """Uninstrumented loop: locals hoisted, one heap pop per *batch*."""
        if until is None:
            until = math.inf
        times = self._times
        buckets = self._buckets
        pop = _heappop
        while not self._stopped:
            active = self._active
            if active is not None:
                when, bucket, i = active
                if when > until:
                    return
                self._active = None
            else:
                if not times:
                    return
                when = times[0]
                if when > until:
                    return
                pop(times)
                maybe = buckets.pop(when, None)
                if maybe is None:  # duplicate timestamp, already dispatched
                    continue
                bucket = maybe
                i = 0
            n = len(bucket)
            while i < n:
                cb = bucket[i]
                if cb is None:  # cancelled: tombstoned cell
                    i += 2
                    continue
                args = bucket[i + 1]
                bucket[i] = None  # fired: a late cancel is a no-op
                i += 2
                self._live -= 1
                # The clock moves only when something actually
                # fires: an all-cancelled bucket must not advance it.
                self._now = when
                cb(*args)
                if self._stopped:
                    if i < n:
                        self._active = (when, bucket, i)
                    return

    def _run_instrumented(self, until: Optional[float]) -> None:
        """The same single-scan batch loop, with per-event instrumentation.

        Mirrors :meth:`_run_fast` exactly (same batch walk, same
        generation checks) so dispatch order cannot diverge; the only
        additions are the per-event timing/metrics/profile calls, and a
        per-event sink check so instrumentation attached mid-run by a
        callback takes effect immediately (matching the historic
        ``peek``/``step`` loop's behaviour).
        """
        if until is None:
            until = math.inf
        times = self._times
        buckets = self._buckets
        pop = _heappop
        while not self._stopped:
            active = self._active
            if active is not None:
                when, bucket, i = active
                if when > until:
                    return
                self._active = None
            else:
                if not times:
                    return
                when = times[0]
                if when > until:
                    return
                pop(times)
                maybe = buckets.pop(when, None)
                if maybe is None:
                    continue
                bucket = maybe
                i = 0
            n = len(bucket)
            while i < n:
                cb = bucket[i]
                if cb is None:  # cancelled: tombstoned cell
                    i += 2
                    continue
                args = bucket[i + 1]
                bucket[i] = None  # fired: a late cancel is a no-op
                i += 2
                self._live -= 1
                self._now = when
                if (
                    self.metrics is None
                    and self.on_dispatch is None
                    and self.profile is None
                ):
                    cb(*args)
                else:
                    self._dispatch_instrumented(cb, args)
                if self._stopped:
                    if i < n:
                        self._active = (when, bucket, i)
                    return
