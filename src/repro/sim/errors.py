"""Exceptions raised by the simulation core."""


class SimulationError(Exception):
    """Base class for every error raised by :mod:`repro.sim`."""


class ScheduleInPastError(SimulationError):
    """An event was scheduled at a time earlier than the current clock."""


class DeadSimulatorError(SimulationError):
    """An operation was attempted on a simulator that already finished."""
