"""Generator-based processes on top of the event engine.

A *process* is a Python generator driven by the simulator.  Each
``yield`` suspends the process until some condition holds:

``yield 1.5``
    sleep for 1.5 simulated seconds (any ``int``/``float``);

``yield signal``
    block until ``signal.fire(value)`` is called; the ``yield``
    expression evaluates to ``value``;

``yield store.get()``
    block until an item is available in a :class:`Store` (FIFO);
    ``store.get(timeout=5.0)`` resumes with the :data:`TIMEOUT`
    sentinel instead if nothing arrives within 5 simulated seconds.

Processes can be interrupted with :meth:`Process.interrupt`, which
raises :class:`Interrupt` inside the generator at its current yield
point — the idiom used to tear down a PPP session or abort a dial
attempt mid-flight.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Generator, List, Optional

from repro.sim.engine import Event, Simulator
from repro.sim.errors import SimulationError


class _Timeout:
    """Type of the :data:`TIMEOUT` sentinel."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<TIMEOUT>"


#: Value a timed :meth:`Store.get` resumes with when the deadline
#: passes before an item arrives.  Compare with ``is``.
TIMEOUT = _Timeout()


class Interrupt(Exception):
    """Raised inside a process generator when it is interrupted.

    The ``cause`` attribute carries whatever object the interrupter
    passed, typically a short reason string.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Signal:
    """A one-to-many wake-up primitive.

    Processes block on a signal by yielding it; plain callbacks can
    subscribe with :meth:`wait`.  Firing wakes every current waiter
    with the fired value.  A signal can fire many times; each fire only
    wakes the waiters registered at that moment.
    """

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self._sim = sim
        self.name = name
        self._waiters: List[Callable[[Any], None]] = []
        self.fire_count = 0
        self.last_value: Any = None

    def wait(self, callback: Callable[[Any], None]) -> None:
        """Register ``callback(value)`` to run on the next fire."""
        self._waiters.append(callback)

    def unwait(self, callback: Callable[[Any], None]) -> None:
        """Remove a previously registered callback if still pending."""
        try:
            self._waiters.remove(callback)
        except ValueError:
            pass

    def fire(self, value: Any = None) -> None:
        """Wake all current waiters at the present simulation instant."""
        self.fire_count += 1
        self.last_value = value
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            self._sim.post(0.0, callback, value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Signal {self.name!r} waiters={len(self._waiters)} fires={self.fire_count}>"


class StoreGet:
    """Handle returned by :meth:`Store.get`; yielded by a process."""

    def __init__(self, store: "Store", timeout: Optional[float] = None) -> None:
        self.store = store
        self.timeout = timeout


class Store:
    """Unbounded FIFO channel between processes.

    ``put`` never blocks.  ``get`` returns a :class:`StoreGet` token the
    consumer yields on; the consumer resumes with the item as the value
    of the yield.  Used to model vsys FIFO pipes and serial lines.
    """

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self._sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Callable[[Any], None]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Append an item, waking the oldest blocked getter if any."""
        if self._getters:
            getter = self._getters.popleft()
            self._sim.post(0.0, getter, item)
        else:
            self._items.append(item)

    def _remove_getter(self, callback: Callable[[Any], None]) -> None:
        try:
            self._getters.remove(callback)
        except ValueError:
            pass

    def _requeue(self, item: Any) -> None:
        """Put a popped-but-undelivered item back at the head (FIFO safe:
        only the head item can be in this state)."""
        self._items.appendleft(item)

    def get(self, timeout: Optional[float] = None) -> StoreGet:
        """Return a token to yield on; resolves to the next item.

        With ``timeout`` the yield resumes with :data:`TIMEOUT` if no
        item arrives within that many simulated seconds.
        """
        return StoreGet(self, timeout)

    def get_nowait(self) -> Any:
        """Pop the next item immediately, or raise ``IndexError``."""
        return self._items.popleft()

    def _register_getter(self, callback: Callable[[Any], None]) -> None:
        if self._items:
            item = self._items.popleft()
            self._sim.post(0.0, callback, item)
        else:
            self._getters.append(callback)


class Process:
    """A running generator bound to a simulator.

    Create with :func:`spawn` or ``Process(sim, generator)``.  The
    process starts at the current instant (its first slice of work runs
    via a zero-delay event, so construction never re-enters user code).
    """

    def __init__(self, sim: Simulator, generator: Generator, name: str = "") -> None:
        self._sim = sim
        self._gen = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.alive = True
        self.value: Any = None
        self.done = Signal(sim, f"{self.name}.done")
        self._pending_event: Optional[Event] = None
        self._waiting_signal: Optional[Signal] = None
        self._signal_callback: Optional[Callable[[Any], None]] = None
        self._waiting_store: Optional[Store] = None
        self._store_callback: Optional[Callable[[Any], None]] = None
        self._sim.post(0.0, self._resume, None)

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at its yield point."""
        if not self.alive:
            return
        self._detach()
        self._sim.post(0.0, self._throw, Interrupt(cause))

    def _detach(self) -> None:
        """Forget whatever the process was waiting on.

        Crucially this includes store-getter registrations: a stale
        getter left behind by an interrupted process would silently
        swallow the next item put into the store.
        """
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        if self._waiting_signal is not None and self._signal_callback is not None:
            self._waiting_signal.unwait(self._signal_callback)
        if self._waiting_store is not None:
            self._waiting_store._remove_getter(self._store_callback or self._resume)
            self._waiting_store = None
        self._waiting_signal = None
        self._signal_callback = None
        self._store_callback = None

    def _throw(self, exc: BaseException) -> None:
        if not self.alive:
            return
        try:
            yielded = self._gen.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except Interrupt:
            self._finish(None)
            return
        self._wait_on(yielded)

    def _resume(self, value: Any) -> None:
        if not self.alive:
            return
        self._pending_event = None
        self._waiting_signal = None
        self._signal_callback = None
        self._waiting_store = None
        self._store_callback = None
        try:
            yielded = self._gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._wait_on(yielded)

    def _finish(self, value: Any) -> None:
        self.alive = False
        self.value = value
        self.done.fire(value)

    def _wait_on(self, yielded: Any) -> None:
        if isinstance(yielded, (int, float)):
            self._pending_event = self._sim.schedule(float(yielded), self._resume, None)
        elif isinstance(yielded, Signal):
            self._waiting_signal = yielded
            self._signal_callback = self._resume
            yielded.wait(self._resume)
        elif isinstance(yielded, StoreGet):
            self._wait_store(yielded)
        elif isinstance(yielded, Process):
            if yielded.alive:
                self._waiting_signal = yielded.done
                self._signal_callback = self._resume
                yielded.done.wait(self._resume)
            else:
                self._pending_event = self._sim.schedule(0.0, self._resume, yielded.value)
        else:
            raise SimulationError(f"process {self.name!r} yielded unsupported {yielded!r}")

    def _wait_store(self, token: StoreGet) -> None:
        """Block on a store, optionally racing a timeout timer.

        Exactly one of the two closures settles the wait; the loser
        cleans up after itself (the timer is cancelled, or a same-instant
        delivery is requeued at the store head), so the process is never
        resumed twice.
        """
        store = token.store
        settled = [False]

        def on_item(item: Any) -> None:
            if settled[0]:
                store._requeue(item)
                return
            settled[0] = True
            if self._pending_event is not None:
                self._pending_event.cancel()
                self._pending_event = None
            self._resume(item)

        def on_timeout() -> None:
            if settled[0]:
                return
            settled[0] = True
            self._pending_event = None
            store._remove_getter(on_item)
            self._resume(TIMEOUT)

        self._waiting_store = store
        self._store_callback = on_item
        store._register_getter(on_item)
        if token.timeout is not None:
            self._pending_event = self._sim.schedule(token.timeout, on_timeout)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else "done"
        return f"<Process {self.name!r} {state}>"


def spawn(sim: Simulator, generator: Generator, name: str = "") -> Process:
    """Start a generator as a simulation process."""
    return Process(sim, generator, name=name)
