"""The sharded campaign runner: process pool, deterministic merge.

``run_campaign`` executes independent jobs across ``workers``
processes and merges results **sorted by job key**, so the campaign
digest — SHA-256 over each result's canonical ``stable`` record in key
order — is bit-identical for any ``-j``: scheduling order, worker
count, fork vs spawn, and cache hits all cancel out of the digest.
``-j 1`` runs in-process with zero pool machinery, which makes it both
the fast path for tiny campaigns and the reference the parallel runs
are proved against.

Per-worker observability merges the same way: every job returns a
:meth:`MetricsRegistry.snapshot`, and the runner folds them into one
registry via :meth:`MetricsRegistry.merge` in key order, so counter
totals (and gauge extremes) aggregate without double counting and
without scheduling-order dependence.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.parallel.cache import ResultCache
from repro.parallel.jobs import Job, JobResult, resolve_entry_point, validate_jobs


def execute_job(job: Job) -> JobResult:
    """Run one job to completion in this process (the worker body)."""
    entry = resolve_entry_point(job.kind)
    start = time.perf_counter()
    output = entry(dict(job.payload))
    wall = time.perf_counter() - start
    return JobResult(
        key=job.key,
        kind=job.kind,
        stable=output.stable,
        volatile=output.volatile,
        metrics=output.metrics,
        wall_s=wall,
    )


def campaign_digest(results: Sequence[JobResult]) -> str:
    """SHA-256 over the key-sorted canonical stable records."""
    hasher = hashlib.sha256()
    for result in sorted(results, key=lambda r: r.key):
        hasher.update(result.stable_digest_line().encode())
        hasher.update(b"\n")
    return hasher.hexdigest()


def default_start_method() -> str:
    """``fork`` where the platform offers it (cheap workers), else ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


@dataclass
class CampaignResult:
    """Every job's result plus the campaign-level aggregates."""

    results: List[JobResult]
    digest: str
    workers: int
    wall_s: float
    cache_stats: Optional[Dict[str, int]] = None
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    def by_key(self) -> Dict[str, JobResult]:
        """key → result, for report reassembly in submission order."""
        return {result.key: result for result in self.results}

    def cached_count(self) -> int:
        """How many results were served from the cache."""
        return sum(1 for result in self.results if result.cached)


def run_campaign(
    jobs: Sequence[Job],
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    start_method: Optional[str] = None,
) -> CampaignResult:
    """Execute ``jobs`` with ``workers`` processes and merge by key.

    ``workers=1`` runs in-process (no pool); ``workers=0`` means one
    per CPU.  With a ``cache``, jobs whose content address already has
    a result are skipped and restored; fresh results are stored back.
    The returned results are key-sorted, the digest is order- and
    ``workers``-independent, and ``metrics`` holds the key-ordered
    merge of every per-worker snapshot.
    """
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers!r}")
    if workers == 0:
        workers = multiprocessing.cpu_count()
    jobs = list(jobs)
    validate_jobs(jobs)
    start = time.perf_counter()
    results: Dict[str, JobResult] = {}
    pending: List[Job] = []
    for job in jobs:
        hit = cache.load(job) if cache is not None else None
        if hit is not None:
            results[job.key] = hit
        else:
            pending.append(job)
    if pending:
        if workers == 1 or len(pending) == 1:
            fresh = [execute_job(job) for job in pending]
        else:
            context = multiprocessing.get_context(
                start_method or default_start_method()
            )
            with context.Pool(processes=min(workers, len(pending))) as pool:
                fresh = pool.map(execute_job, pending, chunksize=1)
        for job, result in zip(pending, fresh):
            results[job.key] = result
            if cache is not None:
                cache.store(job, result)
    merged = [results[key] for key in sorted(results)]
    metrics = MetricsRegistry()
    for result in merged:
        if result.metrics:
            metrics.merge(result.metrics)
    return CampaignResult(
        results=merged,
        digest=campaign_digest(merged),
        workers=workers,
        wall_s=time.perf_counter() - start,
        cache_stats=cache.stats.as_dict() if cache is not None else None,
        metrics=metrics,
    )
