"""Content-addressed result cache for campaign jobs.

A cached result is valid only while *nothing that could influence it*
changed, so the cache key folds together:

- the **source-tree digest** — SHA-256 over every ``*.py`` file under
  ``src/repro`` (path and content), so any code change invalidates
  every entry;
- the job ``kind`` and ``key``;
- the canonical JSON of the job **payload** — scenario config, seed,
  duration, every simulation input.

Entries live as one JSON document per key under ``~/.cache/repro`` (or
``$REPRO_CACHE_DIR``, or ``--cache-dir``).  The cache is strictly an
optimization: a hit returns the byte-identical ``stable`` result a
fresh run would produce, which ``repro chaos --check`` re-proves by
forcing its second campaign run fresh.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.parallel.jobs import Job, JobResult

PathLike = Union[str, Path]

#: Bump when the cache record layout changes (invalidates old entries).
CACHE_SCHEMA = 1


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def tree_digest(root: PathLike) -> str:
    """SHA-256 over every ``*.py`` under ``root`` (relative path + bytes)."""
    root = Path(root)
    hasher = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        hasher.update(path.relative_to(root).as_posix().encode())
        hasher.update(b"\0")
        hasher.update(path.read_bytes())
        hasher.update(b"\0")
    return hasher.hexdigest()


@functools.lru_cache(maxsize=4)
def _memoized_tree_digest(root: str) -> str:
    return tree_digest(root)


def source_tree_digest() -> str:
    """The digest of the installed ``repro`` package source (memoized)."""
    import repro

    return _memoized_tree_digest(str(Path(repro.__file__).parent))


class CacheStats:
    """Hit/miss accounting for one campaign run."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.uncacheable = 0

    def as_dict(self) -> Dict[str, int]:
        """Exportable snapshot."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "uncacheable": self.uncacheable,
        }

    def summary(self) -> str:
        """One human-readable report line (``--cache-stats``)."""
        return (
            f"cache: hits={self.hits} misses={self.misses} "
            f"stores={self.stores} uncacheable={self.uncacheable}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CacheStats {self.summary()}>"


class ResultCache:
    """Content-addressed storage of :class:`JobResult` records."""

    def __init__(self, root: Optional[PathLike] = None,
                 source_digest: Optional[str] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        #: injectable for tests; defaults to the real package digest.
        self.source_digest = (
            source_digest if source_digest is not None else source_tree_digest()
        )
        self.stats = CacheStats()

    def key_for(self, job: Job) -> str:
        """The content address of ``job`` under the current source tree."""
        hasher = hashlib.sha256()
        for part in (
            f"schema={CACHE_SCHEMA}",
            f"tree={self.source_digest}",
            f"kind={job.kind}",
            f"key={job.key}",
            f"payload={job.payload_json()}",
        ):
            hasher.update(part.encode())
            hasher.update(b"\n")
        return hasher.hexdigest()

    def path_for(self, job: Job) -> Path:
        """Where ``job``'s cached record lives."""
        return self.root / f"{self.key_for(job)}.json"

    def load(self, job: Job) -> Optional[JobResult]:
        """The cached result for ``job``, or ``None`` (counted either way)."""
        if not job.cacheable:
            self.stats.uncacheable += 1
            return None
        path = self.path_for(job)
        if not path.exists():
            self.stats.misses += 1
            return None
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return JobResult.from_record(record, cached=True)

    def store(self, job: Job, result: JobResult) -> Optional[Path]:
        """Persist a fresh result (no-op for uncacheable jobs)."""
        if not job.cacheable:
            return None
        path = self.path_for(job)
        path.parent.mkdir(parents=True, exist_ok=True)
        document: Dict[str, Any] = dict(result.record())
        document["schema"] = CACHE_SCHEMA
        path.write_text(json.dumps(document, sort_keys=True) + "\n")
        self.stats.stores += 1
        return path
