"""Sharded campaign execution with a deterministic merge.

Campaigns — bench scenario repeats, the chaos suite, seed sweeps —
are embarrassingly parallel: every job is an independent simulation
fully described by its payload.  This package shards them across a
process pool and merges the results in stable job-key order, so the
campaign digest is bit-identical for any ``-j``; a content-addressed
cache (keyed by source tree, scenario, and seed) skips jobs whose
inputs have not changed.  See ``docs/PARALLEL.md`` for the job model
and the determinism contract.
"""

from repro.parallel.cache import (
    CacheStats,
    ResultCache,
    default_cache_dir,
    source_tree_digest,
    tree_digest,
)
from repro.parallel.entrypoints import (
    bench_jobs,
    chaos_jobs,
    fleet_jobs,
    lint_jobs,
    scenario_jobs,
    sweep_jobs,
)
from repro.parallel.jobs import (
    ENTRY_POINTS,
    Job,
    JobOutput,
    JobResult,
    entry_point,
    resolve_entry_point,
    validate_jobs,
)
from repro.parallel.runner import (
    CampaignResult,
    campaign_digest,
    default_start_method,
    execute_job,
    run_campaign,
)

__all__ = [
    "ENTRY_POINTS",
    "CacheStats",
    "CampaignResult",
    "Job",
    "JobOutput",
    "JobResult",
    "ResultCache",
    "bench_jobs",
    "campaign_digest",
    "chaos_jobs",
    "default_cache_dir",
    "default_start_method",
    "entry_point",
    "execute_job",
    "fleet_jobs",
    "lint_jobs",
    "resolve_entry_point",
    "run_campaign",
    "scenario_jobs",
    "source_tree_digest",
    "sweep_jobs",
    "tree_digest",
    "validate_jobs",
]
