"""The campaign job model: spawn-safe descriptors, pure entry points.

A :class:`Job` is everything a worker needs to produce one result —
a ``kind`` naming a registered entry point, a campaign-unique ``key``
(the merge sort key), and a JSON-able ``payload`` holding every input
the simulation depends on (scenario config, seed, duration, ...).
Jobs carry *data only*: they pickle cheaply, survive ``spawn`` start
methods, and — because the payload is the complete input — double as
the content-addressed cache key (see :mod:`repro.parallel.cache`).

Entry points are module-level functions registered under their kind
with :func:`entry_point`; they receive the payload and return a
:class:`JobOutput` whose ``stable`` part is a pure function of the
payload (the determinism contract the campaign digest hashes) and
whose ``volatile`` part may hold wall-clock measurements.  Worker
processes re-resolve the function from the registry by name, so
nothing un-picklable ever crosses the process boundary.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, NamedTuple, Optional


class JobOutput(NamedTuple):
    """What an entry point returns.

    ``stable`` must be a pure function of the job payload — it is what
    the campaign digest hashes and what ``-j 1`` vs ``-j N`` equality
    is proved over.  ``volatile`` holds anything wall-clock-dependent
    (timings); ``metrics`` is a :meth:`MetricsRegistry.snapshot` from
    the worker, merged into one campaign-wide registry by the runner.
    """

    stable: Dict[str, Any]
    volatile: Dict[str, Any] = {}
    metrics: Dict[str, Dict[str, Any]] = {}


@dataclass(frozen=True)
class Job:
    """One independent unit of campaign work (spawn-safe, picklable)."""

    kind: str
    key: str
    payload: Dict[str, Any] = field(default_factory=dict)
    #: Timing-measurement jobs set this False so re-runs re-measure.
    cacheable: bool = True

    def payload_json(self) -> str:
        """Canonical JSON of the payload (cache-key material)."""
        return json.dumps(self.payload, sort_keys=True, separators=(",", ":"))


@dataclass
class JobResult:
    """One executed (or cache-restored) job, ready to merge."""

    key: str
    kind: str
    stable: Dict[str, Any]
    volatile: Dict[str, Any]
    metrics: Dict[str, Dict[str, Any]]
    wall_s: float
    cached: bool = False

    def record(self) -> Dict[str, Any]:
        """The JSON document the result cache persists."""
        return {
            "key": self.key,
            "kind": self.kind,
            "stable": self.stable,
            "volatile": self.volatile,
            "metrics": self.metrics,
            "wall_s": self.wall_s,
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any], cached: bool = False) -> "JobResult":
        """Rebuild a result from a cache document."""
        return cls(
            key=record["key"],
            kind=record["kind"],
            stable=record["stable"],
            volatile=record["volatile"],
            metrics=record.get("metrics", {}),
            wall_s=record.get("wall_s", 0.0),
            cached=cached,
        )

    def stable_digest_line(self) -> str:
        """The canonical record the campaign digest hashes for this job."""
        return json.dumps(
            {"key": self.key, "kind": self.kind, "stable": self.stable},
            sort_keys=True,
            separators=(",", ":"),
        )


EntryPoint = Callable[[Dict[str, Any]], JobOutput]

#: kind → entry point; populated at import of repro.parallel.entrypoints.
ENTRY_POINTS: Dict[str, EntryPoint] = {}


def entry_point(kind: str) -> Callable[[EntryPoint], EntryPoint]:
    """Register a job entry point under ``kind`` (import-time only)."""

    def installer(fn: EntryPoint) -> EntryPoint:
        if kind in ENTRY_POINTS:
            raise ValueError(f"duplicate entry point {kind!r}")
        # lint: allow(worker-safety) -- import-time registration, identical in every process
        ENTRY_POINTS[kind] = fn
        return fn

    return installer


def resolve_entry_point(kind: str) -> EntryPoint:
    """Look up ``kind``, importing the built-in entry points on demand."""
    if kind not in ENTRY_POINTS:
        # Workers (especially under spawn) resolve lazily: importing
        # here keeps Job pickles free of function references.
        from repro.parallel import entrypoints  # noqa: F401  (registration)
    try:
        return ENTRY_POINTS[kind]
    except KeyError:
        raise KeyError(
            f"unknown job kind {kind!r} (registered: {', '.join(sorted(ENTRY_POINTS))})"
        ) from None


def validate_jobs(jobs: List[Job]) -> None:
    """Reject duplicate keys — the merge order must be unambiguous."""
    seen: Dict[str, Job] = {}
    for job in jobs:
        if job.key in seen:
            raise ValueError(f"duplicate job key {job.key!r}")
        seen[job.key] = job
