"""Built-in campaign workloads: chaos, bench, sweeps, fleet groups.

Each entry point is a module-level function (spawn-safe by
construction) that rebuilds *everything* from its payload — the
scenario config, the seed, the duration all travel in the job, never
in process state — which is what makes a job's ``stable`` output a
pure function of the payload and therefore cacheable and
``-j``-independent.  The matching ``*_jobs`` builders construct the
descriptors the CLI and the tests feed to
:func:`repro.parallel.runner.run_campaign`.
"""

from __future__ import annotations

from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.parallel.jobs import Job, JobOutput, entry_point

# -- chaos ----------------------------------------------------------------


def chaos_jobs(names: Optional[Sequence[str]] = None, repeats: int = 1) -> List[Job]:
    """One job per (selected) built-in chaos scenario.

    ``repeats`` > 1 batches identical runs into each job — the
    campaign wall-clock benchmark uses this, and every repetition must
    reproduce the first run's digest or the job fails.
    """
    from repro.faults.chaos import BUILTIN_SCENARIOS

    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats!r}")
    selected = list(BUILTIN_SCENARIOS)
    if names:
        known = {scenario.name: scenario for scenario in BUILTIN_SCENARIOS}
        missing = [name for name in names if name not in known]
        if missing:
            raise KeyError(
                f"unknown scenario(s): {', '.join(missing)} "
                f"(known: {', '.join(known)})"
            )
        selected = [known[name] for name in names]
    jobs = []
    for scenario in selected:
        config = asdict(scenario)
        config["specs"] = list(config["specs"])
        payload: Dict[str, Any] = {"scenario": config}
        if repeats != 1:
            payload["repeats"] = repeats
        jobs.append(Job(kind="chaos", key=f"chaos:{scenario.name}", payload=payload))
    return jobs


@entry_point("chaos")
def run_chaos_job(payload: Dict[str, Any]) -> JobOutput:
    """Run one chaos scenario (``repeats`` times) under a fresh registry."""
    from repro.faults.chaos import ChaosScenario, run_scenario

    config = dict(payload["scenario"])
    config["specs"] = tuple(config["specs"])
    scenario = ChaosScenario(**config)
    repeats = int(payload.get("repeats", 1))
    metrics = MetricsRegistry()
    report = run_scenario(scenario, metrics=metrics)
    for _ in range(repeats - 1):
        rerun = run_scenario(scenario, metrics=metrics)
        if rerun["digest"] != report["digest"]:
            raise RuntimeError(
                f"chaos scenario {scenario.name!r} did not reproduce its "
                f"digest across batched repeats"
            )
        report = rerun
    stable = dict(report)
    if repeats != 1:
        stable["campaign_repeats"] = repeats
    return JobOutput(stable=stable, volatile={}, metrics=metrics.snapshot())


# -- scenario grammar ------------------------------------------------------


def scenario_jobs(names: Optional[Sequence[str]] = None) -> List[Job]:
    """One job per scenario-grammar point (``repro chaos --scenario-grammar``).

    Defaults to the full enumerated grammar; explicit ``names`` are
    validated eagerly against the catalogs so a typo fails before any
    worker starts.
    """
    from repro.scenarios import grammar_point, point_names

    selected = list(names) if names else point_names()
    for name in selected:
        grammar_point(name)  # raises ScenarioSpecError on unknown points
    return [
        Job(kind="scenario", key=f"scenario:{name}", payload={"point": name})
        for name in selected
    ]


@entry_point("scenario")
def run_scenario_job(payload: Dict[str, Any]) -> JobOutput:
    """Instantiate and run one grammar point under a fresh registry."""
    from repro.scenarios import grammar_point, run_grammar_scenario

    spec = grammar_point(payload["point"])
    metrics = MetricsRegistry()
    report = run_grammar_scenario(spec, metrics=metrics)
    return JobOutput(stable=report, volatile={}, metrics=metrics.snapshot())


# -- bench ----------------------------------------------------------------


def bench_jobs(
    names: Sequence[str],
    repeats: Optional[int] = None,
    warmup: Optional[int] = None,
) -> List[Job]:
    """One job per bench scenario.

    Bench jobs are **not cacheable**: their point is the wall-clock
    measurement, which must be taken fresh on every run.  Their
    ``stable`` part is the run *configuration* only, so ``-j 1`` and
    ``-j N`` campaigns digest identically even though timings differ.
    """
    jobs = []
    for name in names:
        payload: Dict[str, Any] = {"scenario": name}
        if repeats is not None:
            payload["repeats"] = repeats
        if warmup is not None:
            payload["warmup"] = warmup
        jobs.append(
            Job(kind="bench", key=f"bench:{name}", payload=payload, cacheable=False)
        )
    return jobs


@entry_point("bench")
def run_bench_job(payload: Dict[str, Any]) -> JobOutput:
    """Time one registered bench scenario in this worker."""
    from repro.bench import REGISTRY, run_scenario

    name = payload["scenario"]
    if name not in REGISTRY:
        raise KeyError(f"unknown bench scenario {name!r}")
    result = run_scenario(
        REGISTRY[name],
        repeats=payload.get("repeats"),
        warmup=payload.get("warmup"),
    )
    stable = {"scenario": name, "repeats": result.repeats, "warmup": result.warmup}
    return JobOutput(stable=stable, volatile={"times_s": list(result.times)}, metrics={})


# -- fleet ----------------------------------------------------------------


def fleet_jobs(spec: Any) -> List[Job]:
    """One job per fleet group (see :mod:`repro.fleet.spec`).

    ``spec`` is a :class:`~repro.fleet.spec.FleetSpec`; the payload
    carries its JSON form plus the group index, so workers rebuild the
    whole group simulation from pure data.
    """
    payload_spec = spec.to_payload()
    return [
        Job(
            kind="fleet",
            key=f"fleet:g{index:04d}",
            payload={"spec": payload_spec, "group": index},
        )
        for index in range(spec.group_count())
    ]


@entry_point("fleet")
def run_fleet_job(payload: Dict[str, Any]) -> JobOutput:
    """Run one fleet group under a fresh registry."""
    from repro.fleet.campaign import run_group
    from repro.fleet.spec import FleetSpec

    spec = FleetSpec.from_payload(payload["spec"])
    metrics = MetricsRegistry()
    report = run_group(spec, int(payload["group"]), metrics=metrics)
    return JobOutput(stable=report, volatile={}, metrics=metrics.snapshot())


def bench_result_from(result_volatile: Dict[str, Any], name: str, warmup: int) -> Any:
    """Rebuild the :class:`~repro.bench.runner.BenchResult` in the parent."""
    from repro.bench.runner import BenchResult

    return BenchResult(name, list(result_volatile["times_s"]), warmup)


# -- lint -----------------------------------------------------------------


def lint_jobs(files: Sequence[Any], rule_ids: Sequence[str]) -> List[Job]:
    """One job per source file for the sharded lint runner.

    The payload carries the file's own SHA-256 alongside its path, so
    the cache key is content-addressed: editing a file invalidates
    exactly that file's entry, while the rule-set digest the CLI bakes
    into the cache's source digest invalidates everything when the
    analyzer itself changes.
    """
    import hashlib

    jobs = []
    for file_path in files:
        path = str(file_path)
        digest = hashlib.sha256(Path(file_path).read_bytes()).hexdigest()
        payload: Dict[str, Any] = {
            "path": path,
            "digest": digest,
            "rules": list(rule_ids),
        }
        jobs.append(Job(kind="lint", key=f"lint:{path}", payload=payload))
    return jobs


@entry_point("lint")
def run_lint_job(payload: Dict[str, Any]) -> JobOutput:
    """Run the per-file lint phase on one file in this worker."""
    from repro.lint.core import select_rules
    from repro.lint.runner import lint_file

    rules = select_rules(payload["rules"])
    result = lint_file(payload["path"], rules)
    return JobOutput(
        stable={"path": payload["path"], "result": result},
        volatile={},
        metrics={},
    )


# -- sweep ----------------------------------------------------------------

SWEEP_KINDS = ("voip", "cbr")


def sweep_jobs(
    kind: str,
    seeds: Sequence[int],
    paths: Sequence[str],
    duration: float,
    scenario: Optional[str] = None,
) -> List[Job]:
    """The seed × path product for one workload kind.

    ``scenario`` names a scenario-grammar point (validated eagerly);
    the sweep then runs over that grammar point's testbed — the ladder
    as the bearer config, roaming/handover/remote-SIM events armed —
    instead of the plain OneLab scenario.
    """
    if kind not in SWEEP_KINDS:
        raise KeyError(f"unknown sweep kind {kind!r} (known: {', '.join(SWEEP_KINDS)})")
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration!r}")
    if scenario is not None:
        from repro.scenarios import grammar_point

        grammar_point(scenario)  # raises ScenarioSpecError on unknown points
    jobs = []
    for path in paths:
        for seed in seeds:
            payload = {
                "kind": kind,
                "path": path,
                "seed": int(seed),
                "duration": float(duration),
            }
            key = f"sweep:{kind}:{path}:seed={seed:06d}"
            if scenario is not None:
                payload["scenario"] = scenario
                key += f":scenario={scenario}"
            jobs.append(Job(kind="sweep", key=key, payload=payload))
    return jobs


@entry_point("sweep")
def run_sweep_job(payload: Dict[str, Any]) -> JobOutput:
    """One full characterization run; summary stats plus output digest."""
    from repro import cbr, run_characterization, voip_g711
    from repro.bench.determinism import run_digest
    from repro.testbed.scenarios import OneLabScenario

    spec_fn = {"voip": voip_g711, "cbr": cbr}[payload["kind"]]
    # Build the scenario explicitly so a fresh registry rides along;
    # instrumentation never changes dispatch order, so the digest is
    # the same as an unmetered run.
    metrics = MetricsRegistry()
    point = payload.get("scenario")
    if point is not None:
        from repro.scenarios import GrammarHarness, grammar_point

        harness = GrammarHarness(
            grammar_point(point), seed=payload["seed"], metrics=metrics
        )
        harness.arm()
        scenario = harness.testbed
    else:
        scenario = OneLabScenario(seed=payload["seed"])
        scenario.sim.metrics = metrics
    result = run_characterization(
        spec_fn(duration=payload["duration"]),
        path=payload["path"],
        seed=payload["seed"],
        scenario=scenario,
    )
    summary = result.summary
    stable = {
        "kind": payload["kind"],
        "path": payload["path"],
        "seed": payload["seed"],
        "duration": payload["duration"],
        "digest": run_digest(result),
        **({"scenario": point} if point is not None else {}),
        "summary": {
            "packets_sent": summary.packets_sent,
            "packets_received": summary.packets_received,
            "loss_fraction": summary.loss_fraction,
            "bitrate_kbps": summary.mean_bitrate_kbps,
            "mean_jitter_s": summary.mean_jitter,
            "mean_rtt_s": summary.mean_rtt,
            "max_rtt_s": summary.max_rtt,
        },
    }
    return JobOutput(stable=stable, volatile={}, metrics=metrics.snapshot())
