"""The FIFO pipe pair underlying a vsys connection."""

from __future__ import annotations

from repro.sim.engine import Simulator
from repro.sim.process import Store

#: Sentinel object closing a pipe (the writer's EOF).
EOF = object()


class FifoPair:
    """Two unidirectional pipes between a slice and the root context.

    ``to_backend`` carries request lines written by the front-end;
    ``to_frontend`` carries response lines written by the back-end.
    Real vsys materializes these as ``/vsys/<script>.in`` and
    ``.out`` FIFOs inside the slice's filesystem.
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.name = name
        self.to_backend = Store(sim, f"{name}.in")
        self.to_frontend = Store(sim, f"{name}.out")
        self.closed = False

    def close(self) -> None:
        """Close the pair: the back-end sees EOF and exits."""
        if not self.closed:
            self.closed = True
            self.to_backend.put(EOF)
