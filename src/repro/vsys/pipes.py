"""The FIFO pipe pair underlying a vsys connection."""

from __future__ import annotations

from typing import Any

from repro.sim.engine import Simulator
from repro.sim.process import Store

#: Sentinel object closing a pipe (the writer's EOF).
EOF = object()


class FifoPair:
    """Two unidirectional pipes between a slice and the root context.

    ``to_backend`` carries request lines written by the front-end;
    ``to_frontend`` carries response lines written by the back-end.
    Real vsys materializes these as ``/vsys/<script>.in`` and
    ``.out`` FIFOs inside the slice's filesystem.

    Writes go through :meth:`send_request` / :meth:`send_response`,
    which consult the ``vsys`` fault point: a request line can arrive
    truncated (the short-write hazard of a real FIFO), a response line
    can be lost.  Only *string* lines are faultable — the exit sentinel
    and EOF are control-plane objects whose loss would model a kernel
    bug, not an I/O hazard, and would wedge the peer forever.
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self._sim = sim
        self.name = name
        self.to_backend = Store(sim, f"{name}.in")
        self.to_frontend = Store(sim, f"{name}.out")
        self.closed = False
        self.truncated_requests = 0
        self.dropped_responses = 0

    def send_request(self, line: Any) -> None:
        """Front-end → back-end, through the fault layer."""
        if isinstance(line, str):
            faults = self._sim.faults
            if faults is not None and faults.fire("vsys", "truncate_request"):
                self.truncated_requests += 1
                line = line[: max(1, len(line) // 2)]
        self.to_backend.put(line)

    def send_response(self, item: Any) -> None:
        """Back-end → front-end, through the fault layer."""
        if isinstance(item, str):
            faults = self._sim.faults
            if faults is not None and faults.fire("vsys", "drop_response"):
                self.dropped_responses += 1
                return
        self.to_frontend.put(item)

    def close(self) -> None:
        """Close the pair: both endpoints see EOF and exit."""
        if not self.closed:
            self.closed = True
            self.to_backend.put(EOF)
            self.to_frontend.put(EOF)
