"""vsys — privileged command execution from inside slices.

vsys (Bhatia et al., used on PlanetLab) lets a slice run a vetted
program with root privileges: for each (script, slice) pair it creates
a pair of FIFO pipes; the slice-side *front-end* writes a request into
one pipe, a root-context *back-end* executes it and writes the result
into the other.  Access is controlled by per-script ACLs listing the
slices allowed to open the pipes.

This package reproduces that shape exactly:

- :class:`FifoPair` — the two pipes, built on simulation stores;
- :class:`VsysDaemon` — script registry + ACLs + back-end spawning;
- :class:`VsysConnection` — the slice side: ``call(argv)`` returns a
  simulation process completing with a :class:`VsysResult`.

The paper's ``umts`` command (:mod:`repro.core`) is registered as one
of these scripts.
"""

from repro.vsys.daemon import VsysConnection, VsysDaemon, VsysError, VsysResult
from repro.vsys.pipes import FifoPair

__all__ = ["FifoPair", "VsysConnection", "VsysDaemon", "VsysError", "VsysResult"]
