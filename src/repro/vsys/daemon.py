"""The vsys daemon: script registry, ACLs and back-end execution."""

from __future__ import annotations

import inspect
import shlex
from typing import Any, Callable, Dict, Generator, List, NamedTuple, Sequence, Set

from repro.faults.errors import VsysProtocolError
from repro.sim.engine import Simulator
from repro.sim.process import Process, spawn
from repro.vsys.pipes import EOF, FifoPair


class VsysError(Exception):
    """Script unknown, ACL denial, or protocol misuse."""


class VsysResult(NamedTuple):
    """Outcome of one vsys request: exit code plus output lines."""

    code: int
    lines: List[str]

    @property
    def ok(self) -> bool:
        """True for exit code 0."""
        return self.code == 0

    @property
    def text(self) -> str:
        """The output joined into one string."""
        return "\n".join(self.lines)


#: A back-end handler: ``handler(slice_name, argv)``.  It may be a plain
#: function returning ``(code, lines)`` or a generator (a simulation
#: process body) returning the same — dialing a modem takes simulated
#: time, so the umts back-end is a generator.
Handler = Callable[[str, List[str]], Any]

_EXIT_SENTINEL = "__vsys_exit__"


class VsysConnection:
    """The slice-side endpoint of one (script, slice) FIFO pair."""

    def __init__(self, sim: Simulator, pipe: FifoPair, script: str, slice_name: str):
        self._sim = sim
        self.pipe = pipe
        self.script = script
        self.slice_name = slice_name
        self._busy = False
        self.closed = False

    def call(self, argv: List[str]) -> Process:
        """Issue one request; returns a process yielding a :class:`VsysResult`.

        Requests are serialized per connection — real FIFOs interleave
        bytes otherwise — so concurrent calls raise :class:`VsysError`.
        """
        if self.closed:
            raise VsysError(f"connection to {self.script!r} is closed")
        if self._busy:
            raise VsysError(f"connection to {self.script!r} is busy")
        line = " ".join(shlex.quote(arg) for arg in argv)

        def frontend() -> Generator[Any, Any, VsysResult]:
            self._busy = True
            try:
                self.pipe.send_request(line)
                lines: List[str] = []
                while True:
                    item = yield self.pipe.to_frontend.get()
                    if item is EOF:
                        # The pair was torn down under us; surface a
                        # clean failure instead of waiting forever.
                        lines.append("vsys: connection closed")
                        return VsysResult(1, lines)
                    if isinstance(item, tuple) and item[0] == _EXIT_SENTINEL:
                        return VsysResult(item[1], lines)
                    lines.append(item)
            finally:
                self._busy = False

        return spawn(self._sim, frontend(), name=f"vsys-call:{self.script}")

    def call_blocking(self, argv: List[str]) -> VsysResult:
        """Test/example convenience: issue a call and run the simulator
        until it completes.  Must not be used from inside a running
        simulation — yield on :meth:`call`'s process there instead."""
        process = self.call(argv)
        while process.alive:
            if not self._sim.step():
                raise VsysError(f"vsys call {argv!r} deadlocked (no pending events)")
        return process.value

    def close(self) -> None:
        """Close the FIFO pair; the back-end exits."""
        self.closed = True
        self.pipe.close()


class VsysDaemon:
    """Script registry plus per-script ACLs for one node."""

    def __init__(self, sim: Simulator, node_name: str = ""):
        self._sim = sim
        self.node_name = node_name
        self._scripts: Dict[str, Handler] = {}
        self._acls: Dict[str, Set[str]] = {}
        self.connections_opened = 0
        self.calls_denied = 0

    def register(self, name: str, handler: Handler, acl: Sequence[str] = ()) -> None:
        """Install a back-end script with an initial ACL."""
        if name in self._scripts:
            raise VsysError(f"script {name!r} already registered")
        self._scripts[name] = handler
        self._acls[name] = set(acl)

    def scripts(self) -> List[str]:
        """Names of the registered scripts."""
        return sorted(self._scripts)

    def allow(self, script: str, slice_name: str) -> None:
        """Add a slice to a script's ACL."""
        self._require_script(script)
        self._acls[script].add(slice_name)

    def deny(self, script: str, slice_name: str) -> None:
        """Remove a slice from a script's ACL."""
        self._require_script(script)
        self._acls[script].discard(slice_name)

    def is_allowed(self, script: str, slice_name: str) -> bool:
        """Whether ``slice_name`` may open ``script``."""
        return slice_name in self._acls.get(script, set())

    def open(self, slice_name: str, script: str) -> VsysConnection:
        """Create the FIFO pair and spawn the root-context back-end.

        This is what materializing ``/vsys/<script>.in|.out`` inside the
        slice does on a real node.
        """
        self._require_script(script)
        if not self.is_allowed(script, slice_name):
            self.calls_denied += 1
            trace = self._sim.trace
            if trace is not None:
                trace.error("vsys.acl_denied", script=script, slice=slice_name)
            metrics = self._sim.metrics
            if metrics is not None:
                metrics.counter("vsys.denied").inc()
            raise VsysError(
                f"slice {slice_name!r} is not in the ACL of vsys script {script!r}"
            )
        pipe = FifoPair(self._sim, f"{self.node_name}/vsys/{script}:{slice_name}")
        handler = self._scripts[script]
        spawn(
            self._sim,
            self._backend_loop(pipe, slice_name, script, handler),
            name=f"vsys-backend:{script}:{slice_name}",
        )
        self.connections_opened += 1
        return VsysConnection(self._sim, pipe, script, slice_name)

    def _require_script(self, script: str) -> None:
        if script not in self._scripts:
            raise VsysError(f"no vsys script {script!r}")

    def _backend_loop(
        self, pipe: FifoPair, slice_name: str, script: str, handler: Handler
    ) -> Generator[Any, Any, None]:
        """Root-context process servicing one FIFO pair until EOF."""
        while True:
            line = yield pipe.to_backend.get()
            if line is EOF:
                return
            try:
                argv = _parse_request(line)
            except VsysProtocolError as exc:
                pipe.send_response(f"vsys: unparsable request: {exc}")
                pipe.to_frontend.put((_EXIT_SENTINEL, 1))
                continue
            trace = self._sim.trace
            span = (
                trace.span("vsys.request", script=script, slice=slice_name, argv=line)
                if trace is not None
                else None
            )
            started_at = self._sim.now
            try:
                outcome = handler(slice_name, argv)
                if inspect.isgenerator(outcome):
                    outcome = yield from outcome
                code, lines = outcome if outcome is not None else (0, [])
            except Exception as exc:  # back-end crash → exit 1, like a real script
                code, lines = 1, [f"error: {exc}"]
            if span is not None:
                span.end(status="ok" if code == 0 else "error", code=code)
            metrics = self._sim.metrics
            if metrics is not None:
                metrics.counter("vsys.requests").inc()
                if code != 0:
                    metrics.counter("vsys.failures").inc()
                metrics.histogram("vsys.latency_seconds").observe(
                    self._sim.now - started_at
                )
            for out_line in lines:
                pipe.send_response(out_line)
            pipe.to_frontend.put((_EXIT_SENTINEL, code))


def _parse_request(line: Any) -> List[str]:
    """Split one request line into argv, or raise a *typed* error.

    A truncated FIFO write can land mid-token (an unbalanced quote) or
    deliver something that is not a line at all; both used to bubble up
    as bare ``ValueError``/``AttributeError`` from :func:`shlex.split`.
    The retry layer classifies :class:`VsysProtocolError` as transient.
    """
    if not isinstance(line, str):
        raise VsysProtocolError(f"expected a request line, got {type(line).__name__}")
    try:
        return shlex.split(line)
    except ValueError as exc:
        raise VsysProtocolError(str(exc)) from exc
