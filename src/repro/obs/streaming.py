"""Online, constant-memory aggregation for campaign-scale telemetry.

The analysis layer historically buffered a whole run's samples (one
``List[List[float]]`` bucket table per windowed series) before
aggregating.  That is fine for one 120 s characterization and hopeless
for fleet-scale campaigns holding millions of samples.  Everything in
this module consumes samples **one at a time, in time order**, and
keeps only O(1) state per open aggregate:

- :class:`StreamingWindows` — the paper's non-overlapping 200 ms QoS
  windows (mean/sum/count/max/min), computed online.  Fed the same
  samples in the same order, it reproduces
  :meth:`~repro.sim.monitor.TimeSeries.window_average` and friends
  bit-for-bit (same left-to-right float accumulation), which is what
  lets the decoder swap it in without moving a golden digest.
- :class:`StreamingStats` — running count/sum/min/max plus Welford
  variance for whole-run summaries without a sample list.
- :class:`P2Quantile` / :class:`QuantileSketch` — the P² algorithm
  (Jain & Chlamtac 1985): a five-marker streaming quantile estimate,
  deterministic for a given sample sequence, no sample retention.

Nothing here imports the simulator; the engine (or a decoder walking
recorded logs) just calls ``add``/``observe``.  For column-shaped
inputs — parallel lists or ``array('d')`` sample columns — the
``add_many``/``observe_many`` bulk paths fold a whole batch per call
with the accumulator state held in locals; they are bit-identical to
the one-at-a-time calls (same left-to-right float accumulation), just
several times cheaper at fleet volume.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

#: The paper's reporting granularity (§3.1): 200 ms windows.
QOS_WINDOW = 0.2

#: Aggregation modes StreamingWindows understands.
WINDOW_MODES = ("mean", "sum", "count", "max", "min")


class StreamingWindows:
    """Non-overlapping window aggregation, one sample at a time.

    Samples must arrive with non-decreasing timestamps.  Only the open
    window's accumulator (count, running sum, extremes) is held; when a
    sample crosses a window edge the finished window's aggregate is
    appended to the output arrays and the accumulator resets — constant
    memory beyond the output itself.

    ``end`` (known up front, or passed to :meth:`finish`) fixes the
    window count exactly like ``TimeSeries.window_aggregate``: samples
    at or past ``end`` are dropped, and the last window absorbs any
    index overflow from float division at the edge.
    """

    __slots__ = (
        "window", "mode", "start", "empty_value", "end",
        "times", "values",
        "_open_index", "_count", "_total", "_min", "_max", "_closed",
    )

    def __init__(
        self,
        window: float = QOS_WINDOW,
        mode: str = "mean",
        start: float = 0.0,
        end: Optional[float] = None,
        empty_value: Optional[float] = None,
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window!r}")
        if mode not in WINDOW_MODES:
            raise ValueError(f"unknown mode {mode!r} (known: {', '.join(WINDOW_MODES)})")
        self.window = window
        self.mode = mode
        self.start = start
        self.end = end
        if empty_value is None:
            empty_value = 0.0 if mode in ("sum", "count") else math.nan
        self.empty_value = empty_value
        self.times: List[float] = []
        self.values: List[float] = []
        self._open_index = 0
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._closed = False

    def _n_windows(self, end: float) -> int:
        return max(0, int(math.ceil((end - self.start) / self.window)))

    def _index_for(self, t: float) -> int:
        index = int((t - self.start) / self.window)
        if self.end is not None:
            n_windows = self._n_windows(self.end)
            if index >= n_windows:
                index = n_windows - 1
        return index

    def _aggregate(self) -> float:
        if self._count == 0:
            return self.empty_value
        if self.mode == "mean":
            return self._total / self._count
        if self.mode == "sum":
            return self._total
        if self.mode == "count":
            return float(self._count)
        if self.mode == "max":
            return self._max
        return self._min

    def _close_through(self, index: int) -> None:
        """Emit every window before ``index`` (gaps get the empty value)."""
        while self._open_index < index:
            self.times.append(self.start + self._open_index * self.window)
            self.values.append(self._aggregate())
            self._open_index += 1
            self._count = 0
            self._total = 0.0
            self._min = math.inf
            self._max = -math.inf

    def add(self, t: float, value: float) -> None:
        """Fold one sample in.  Timestamps must be non-decreasing."""
        if self._closed:
            raise ValueError("cannot add to a finished StreamingWindows")
        if t < self.start:
            return
        if self.end is not None and t >= self.end:
            return
        index = self._index_for(t)
        if index < self._open_index:
            raise ValueError(
                f"sample at {t!r} belongs to window {index}, already closed "
                f"(open window is {self._open_index})"
            )
        self._close_through(index)
        self._count += 1
        self._total += value
        if value > self._max:
            self._max = value
        if value < self._min:
            self._min = value

    def add_many(self, times: Sequence[float], values: Sequence[float]) -> None:
        """Fold a whole column batch in, bit-identical to repeated :meth:`add`.

        ``times`` and ``values`` are parallel sequences — plain lists or
        ``array('d')`` columns both work.  The accumulator state lives
        in locals for the duration of the batch (one attribute load per
        batch instead of several per sample), but every float is folded
        in strictly left to right with the same operations as
        :meth:`add`, so window aggregates — and the golden digests built
        from them — cannot move.
        """
        if self._closed:
            raise ValueError("cannot add to a finished StreamingWindows")
        start = self.start
        window = self.window
        end = self.end
        n_windows = self._n_windows(end) if end is not None else 0
        open_index = self._open_index
        count = self._count
        total = self._total
        vmin = self._min
        vmax = self._max
        for t, value in zip(times, values):
            if t < start:
                continue
            if end is not None:
                if t >= end:
                    continue
                index = int((t - start) / window)
                if index >= n_windows:
                    index = n_windows - 1
            else:
                index = int((t - start) / window)
            if index != open_index:
                if index < open_index:
                    # Restore state so the error path leaves the
                    # aggregator exactly as repeated add() would.
                    self._count = count
                    self._total = total
                    self._min = vmin
                    self._max = vmax
                    raise ValueError(
                        f"sample at {t!r} belongs to window {index}, already "
                        f"closed (open window is {open_index})"
                    )
                # Window edge crossed: flush locals and emit through the
                # shared close path, then resume with a fresh accumulator.
                self._count = count
                self._total = total
                self._min = vmin
                self._max = vmax
                self._close_through(index)
                open_index = self._open_index
                count = 0
                total = 0.0
                vmin = math.inf
                vmax = -math.inf
            count += 1
            total += value
            if value > vmax:
                vmax = value
            if value < vmin:
                vmin = value
        self._count = count
        self._total = total
        self._min = vmin
        self._max = vmax

    def finish(self, end: Optional[float] = None) -> Tuple[List[float], List[float]]:
        """Close the open window, pad to ``end``, return (times, values).

        Idempotent; after finishing, :meth:`add` raises.  With no
        ``end`` anywhere, the output stops after the last fed window.
        """
        if not self._closed:
            if end is not None and self.end is None:
                self.end = end
            final_end = self.end
            if final_end is None:
                final_end = self.start + (self._open_index + 1) * self.window \
                    if (self._count or self.times) else self.start
            self._close_through(self._n_windows(final_end))
            self._closed = True
        return self.times, self.values

    def __len__(self) -> int:
        return len(self.times)


class StreamingStats:
    """Running summary statistics: count, sum, extremes, Welford variance.

    ``mean`` is ``sum / count`` (left-to-right accumulation), so a
    StreamingStats fed a list reproduces ``sum(xs) / len(xs)`` exactly.
    NaN samples are skipped, mirroring :mod:`repro.analysis.stats`.
    """

    __slots__ = ("count", "total", "min_value", "max_value", "_welford_mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min_value = math.inf
        self.max_value = -math.inf
        self._welford_mean = 0.0
        self._m2 = 0.0

    def observe(self, value: float) -> None:
        """Fold one sample in (NaN is skipped)."""
        if value != value:
            return
        self.count += 1
        self.total += value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value
        delta = value - self._welford_mean
        self._welford_mean += delta / self.count
        self._m2 += delta * (value - self._welford_mean)

    def observe_many(self, values: Sequence[float]) -> None:
        """Fold a batch in, bit-identical to repeated :meth:`observe`.

        Accepts any sequence — a list or an ``array('d')`` column — and
        runs the Welford update with all state in locals, one attribute
        load per batch.  Accumulation order and arithmetic are exactly
        :meth:`observe`'s, so summaries are byte-stable either way.
        """
        count = self.count
        total = self.total
        vmin = self.min_value
        vmax = self.max_value
        wmean = self._welford_mean
        m2 = self._m2
        for value in values:
            if value != value:
                continue
            count += 1
            total += value
            if value < vmin:
                vmin = value
            if value > vmax:
                vmax = value
            delta = value - wmean
            wmean += delta / count
            m2 += delta * (value - wmean)
        self.count = count
        self.total = total
        self.min_value = vmin
        self.max_value = vmax
        self._welford_mean = wmean
        self._m2 = m2

    @property
    def mean(self) -> float:
        """Arithmetic mean (NaN when empty)."""
        if self.count == 0:
            return math.nan
        return self.total / self.count

    @property
    def stdev(self) -> float:
        """Population standard deviation (NaN when empty)."""
        if self.count == 0:
            return math.nan
        return math.sqrt(self._m2 / self.count)

    @property
    def minimum(self) -> float:
        """Smallest sample (NaN when empty)."""
        return self.min_value if self.count else math.nan

    @property
    def maximum(self) -> float:
        """Largest sample (NaN when empty)."""
        return self.max_value if self.count else math.nan

    def as_dict(self) -> Dict[str, float]:
        """Exportable snapshot."""
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.minimum,
            "max": self.maximum,
        }


class P2Quantile:
    """The P² single-quantile estimator (Jain & Chlamtac, 1985).

    Five markers track the running quantile with piecewise-parabolic
    height adjustment: O(1) memory, O(1) per sample, and — crucially
    for the campaign digests — a pure function of the sample sequence.
    Until five samples arrive the exact order statistic is returned.
    """

    __slots__ = ("q", "_heights", "_positions", "_desired", "_increments", "count")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q!r}")
        self.q = q
        self._heights: List[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self.count = 0

    def observe(self, value: float) -> None:
        """Fold one sample in (NaN is skipped; it has no rank)."""
        if value != value:
            return
        self.count += 1
        heights = self._heights
        if len(heights) < 5:
            heights.append(value)
            heights.sort()
            return
        positions = self._positions
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        desired = self._desired
        for i in range(5):
            desired[i] += self._increments[i]
        for i in (1, 2, 3):
            delta = desired[i] - positions[i]
            if (delta >= 1.0 and positions[i + 1] - positions[i] > 1.0) or (
                delta <= -1.0 and positions[i - 1] - positions[i] < -1.0
            ):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    @property
    def value(self) -> float:
        """The current quantile estimate (NaN before any sample)."""
        heights = self._heights
        if not heights:
            return math.nan
        if len(heights) < 5:
            # Exact order statistic while the marker set is filling.
            rank = self.q * (len(heights) - 1)
            low = int(math.floor(rank))
            high = int(math.ceil(rank))
            if low == high:
                return heights[low]
            fraction = rank - low
            return heights[low] + fraction * (heights[high] - heights[low])
        return heights[2]


class QuantileSketch:
    """A bank of :class:`P2Quantile` markers over one latency stream.

    The default quantiles are the ones the report CLI prints for dial
    and traffic latencies (median, tail, extreme tail).
    """

    DEFAULT_QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.99)

    __slots__ = ("name", "quantiles", "_estimators", "stats")

    def __init__(
        self, name: str = "", quantiles: Sequence[float] = DEFAULT_QUANTILES
    ) -> None:
        if not quantiles:
            raise ValueError("need at least one quantile")
        self.name = name
        self.quantiles = tuple(quantiles)
        self._estimators = [P2Quantile(q) for q in self.quantiles]
        self.stats = StreamingStats()

    def observe(self, value: float) -> None:
        """Fold one sample into every estimator."""
        self.stats.observe(value)
        for estimator in self._estimators:
            estimator.observe(value)

    def observe_many(self, values: Sequence[float]) -> None:
        """Fold a batch into every estimator (needs a real sequence,
        not a one-shot iterator — it is walked once per estimator).

        Each estimator consumes the batch independently, so the final
        state is identical to calling :meth:`observe` per sample: the
        markers never interact across estimators.
        """
        self.stats.observe_many(values)
        for estimator in self._estimators:
            observe = estimator.observe
            for value in values:
                observe(value)

    @property
    def count(self) -> int:
        """Samples observed so far."""
        return self.stats.count

    def quantile(self, q: float) -> float:
        """The estimate for a configured quantile ``q``."""
        for want, estimator in zip(self.quantiles, self._estimators):
            if want == q:
                return estimator.value
        raise KeyError(f"quantile {q!r} not tracked (have {self.quantiles!r})")

    def as_dict(self) -> Dict[str, float]:
        """Exportable snapshot: count/mean/extremes plus every quantile."""
        out = self.stats.as_dict()
        for q, estimator in zip(self.quantiles, self._estimators):
            out[f"p{round(q * 100):02d}"] = estimator.value
        return out


def stream_windowed(
    samples,
    window: float,
    mode: str,
    start: float = 0.0,
    end: Optional[float] = None,
    empty_value: Optional[float] = None,
) -> Tuple[List[float], List[float]]:
    """One-shot helper: stream ``(t, value)`` pairs through windows."""
    windows = StreamingWindows(
        window, mode=mode, start=start, end=end, empty_value=empty_value
    )
    for t, value in samples:
        windows.add(t, value)
    return windows.finish()
