"""Trace sinks: in-memory capture, JSONL export, the flight recorder.

A sink is anything with ``on_event(event)``; the :class:`TraceBus`
fans every emitted :class:`~repro.obs.trace.TraceEvent` out to all of
them.  The :class:`FlightRecorder` is the failure-forensics sink: it
keeps only the last N events in a ring buffer, and when an error-kind
event arrives (a ``UmtsCommandError``, a failed dial phase) it freezes
a copy — the post-mortem of what the stack did right before dying.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Callable, List, Optional

from repro.obs.trace import KIND_ERROR, TraceEvent, format_event

#: Default :class:`FlightRecorder` ring size.  256 events is ~4 full
#: datacall bring-ups of trace traffic — enough context to explain any
#: single failure while bounding memory regardless of run length.
DEFAULT_FLIGHT_CAPACITY = 256


class ListSink:
    """Collect every event in order (tests and the CLI use this)."""

    def __init__(self):
        self.events: List[TraceEvent] = []

    def on_event(self, event: TraceEvent) -> None:
        """Append the event."""
        self.events.append(event)

    def clear(self) -> None:
        """Drop everything collected so far."""
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)


class JsonlSink:
    """Write one JSON object per event to a file.

    Accepts a path (opened and owned; :meth:`close` closes it) or any
    file-like object with ``write`` (left open for the caller).
    """

    def __init__(self, target):
        if hasattr(target, "write"):
            self._file = target
            self._owns = False
        else:
            self._file = open(target, "w", encoding="utf-8")
            self._owns = True
        self.written = 0

    def on_event(self, event: TraceEvent) -> None:
        """Serialize and write the event as one line."""
        self._file.write(json.dumps(event.to_dict(), sort_keys=True))
        self._file.write("\n")
        self.written += 1

    def close(self) -> None:
        """Flush, and close the file if this sink opened it."""
        self._file.flush()
        if self._owns:
            self._file.close()


class FlightRecorder:
    """Bounded ring buffer that freezes a dump when an error flies by.

    ``capacity`` bounds the ring (default
    :data:`DEFAULT_FLIGHT_CAPACITY`); ``trigger_kinds`` are the event
    kinds that cause a snapshot (by default only ``error``).  Each
    trigger appends the frozen event list (trigger included, oldest
    first) to :attr:`dumps`; ``on_dump`` is called with it for live
    reporting.  :attr:`seen` counts every event that crossed the ring,
    including the ones it has since evicted.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_FLIGHT_CAPACITY,
        trigger_kinds=(KIND_ERROR,),
        on_dump: Optional[Callable[[List[TraceEvent]], None]] = None,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self.capacity = capacity
        self.trigger_kinds = frozenset(trigger_kinds)
        self.on_dump = on_dump
        self._ring: deque = deque(maxlen=capacity)
        self.dumps: List[List[TraceEvent]] = []
        self.seen = 0

    def on_event(self, event: TraceEvent) -> None:
        """Record the event; snapshot the ring on a trigger kind."""
        self._ring.append(event)
        self.seen += 1
        if event.kind in self.trigger_kinds:
            dump = list(self._ring)
            self.dumps.append(dump)
            if self.on_dump is not None:
                self.on_dump(dump)

    def __len__(self) -> int:
        return len(self._ring)

    def recent(self) -> List[TraceEvent]:
        """The current ring contents, oldest first."""
        return list(self._ring)

    def last_dump(self) -> Optional[List[TraceEvent]]:
        """The most recent frozen dump, if any trigger fired."""
        return self.dumps[-1] if self.dumps else None

    def dump_lines(self, dump: Optional[List[TraceEvent]] = None) -> List[str]:
        """The dump formatted for humans (defaults to the last one)."""
        events = dump if dump is not None else self.last_dump()
        if not events:
            return ["flight recorder: no dump captured"]
        header = (
            f"flight recorder dump: last {len(events)} events "
            f"(trigger: {events[-1].name})"
        )
        return [header] + ["  " + format_event(event) for event in events]
