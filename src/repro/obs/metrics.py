"""The metrics registry: counters, gauges, fixed-bucket histograms.

Components grab metrics by name from the :class:`MetricsRegistry` hung
off the simulator (``sim.metrics``); the registry is the single export
point for the analysis layer (:meth:`MetricsRegistry.as_dict` /
:meth:`MetricsRegistry.to_json`).  Everything here is observation only:
no metric feeds back into simulation behaviour, which is what keeps an
attached registry from perturbing scenario results.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

#: Default histogram edges for simulated-time latencies (seconds).
LATENCY_BUCKETS: Tuple[float, ...] = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0)
#: Default histogram edges for wall-clock dispatch costs (seconds).
WALL_BUCKETS: Tuple[float, ...] = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1)


class MetricsMergeError(ValueError):
    """A snapshot cannot be folded into this registry.

    Raised for incompatible histogram bucket layouts and for snapshot
    entries of unknown type — the failure modes that would otherwise
    silently mis-add counts across campaign workers.
    """


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount!r})")
        self.value += amount

    def as_dict(self) -> Dict[str, Union[int, float]]:
        """Exportable snapshot."""
        return {"type": "counter", "value": self.value}

    def snapshot(self) -> Dict[str, object]:
        """Lossless JSON-able state, mergeable via :meth:`merge_snapshot`."""
        return {"type": "counter", "value": self.value}

    def merge_snapshot(self, state: Dict[str, object]) -> None:
        """Fold another counter's snapshot into this one (values add)."""
        self.inc(state["value"])  # type: ignore[arg-type]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A value that goes up and down, tracking its extremes."""

    __slots__ = ("name", "value", "max_value", "min_value", "updates")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.max_value = -math.inf
        self.min_value = math.inf
        self.updates = 0

    def set(self, value: float) -> None:
        """Set the current value and fold it into the extremes."""
        self.value = value
        self.updates += 1
        if value > self.max_value:
            self.max_value = value
        if value < self.min_value:
            self.min_value = value

    def inc(self, amount: float = 1) -> None:
        """Adjust the gauge upward."""
        self.set(self.value + amount)

    def dec(self, amount: float = 1) -> None:
        """Adjust the gauge downward."""
        self.set(self.value - amount)

    def as_dict(self) -> Dict[str, Union[int, float, None]]:
        """Exportable snapshot (extremes are None before the first set)."""
        return {
            "type": "gauge",
            "value": self.value,
            "max": self.max_value if self.updates else None,
            "min": self.min_value if self.updates else None,
            "updates": self.updates,
        }

    def snapshot(self) -> Dict[str, object]:
        """Lossless JSON-able state, mergeable via :meth:`merge_snapshot`."""
        return {
            "type": "gauge",
            "value": self.value,
            "max": self.max_value if self.updates else None,
            "min": self.min_value if self.updates else None,
            "updates": self.updates,
        }

    def merge_snapshot(self, state: Dict[str, object]) -> None:
        """Fold another gauge's snapshot into this one.

        Extremes and update counts combine; the merged *current* value
        takes the incoming side's (callers merge snapshots in a
        deterministic key order, so the result is reproducible).
        """
        updates = int(state["updates"])  # type: ignore[arg-type]
        if updates == 0:
            return
        self.updates += updates
        self.value = float(state["value"])  # type: ignore[arg-type]
        # A worker that recorded no samples snapshots its extremes as
        # None; guard them individually so a half-formed snapshot (or
        # one round-tripped through a cache document) can never clobber
        # real extremes with a TypeError mid-fold.
        incoming_max = state["max"]
        incoming_min = state["min"]
        if incoming_max is not None and float(incoming_max) > self.max_value:  # type: ignore[arg-type]
            self.max_value = float(incoming_max)  # type: ignore[arg-type]
        if incoming_min is not None and float(incoming_min) < self.min_value:  # type: ignore[arg-type]
            self.min_value = float(incoming_min)  # type: ignore[arg-type]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """Fixed-bucket histogram.

    ``buckets`` are the inclusive upper edges of each bucket; a sample
    lands in the first bucket whose edge is >= the value, or in the
    implicit overflow bucket past the last edge.  Count, sum, and the
    observed min/max are tracked alongside, so means survive export.
    """

    __slots__ = ("name", "buckets", "counts", "overflow", "count", "total",
                 "max_value", "min_value")

    def __init__(self, name: str, buckets: Sequence[float] = LATENCY_BUCKETS):
        if not buckets:
            raise ValueError(f"histogram {name!r} needs at least one bucket edge")
        edges = [float(b) for b in buckets]
        if edges != sorted(edges):
            raise ValueError(f"histogram {name!r} edges must be sorted: {edges!r}")
        self.name = name
        self.buckets: Tuple[float, ...] = tuple(edges)
        self.counts: List[int] = [0] * len(edges)
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self.max_value = -math.inf
        self.min_value = math.inf

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value
        if value < self.min_value:
            self.min_value = value
        for i, edge in enumerate(self.buckets):
            if value <= edge:
                self.counts[i] += 1
                return
        self.overflow += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observed samples (NaN when empty)."""
        if self.count == 0:
            return math.nan
        return self.total / self.count

    def as_dict(self) -> Dict[str, object]:
        """Exportable snapshot with per-bucket counts keyed by edge."""
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "mean": None if self.count == 0 else self.total / self.count,
            "max": self.max_value if self.count else None,
            "min": self.min_value if self.count else None,
            "buckets": {f"le_{edge:g}": n for edge, n in zip(self.buckets, self.counts)},
            "overflow": self.overflow,
        }

    def snapshot(self) -> Dict[str, object]:
        """Lossless JSON-able state, mergeable via :meth:`merge_snapshot`.

        Unlike :meth:`as_dict` (a display export with ``le_…`` keys),
        this keeps the raw ``edges``/``counts`` arrays so a merge can
        verify bucket compatibility and add counts exactly.
        """
        return {
            "type": "histogram",
            "edges": list(self.buckets),
            "counts": list(self.counts),
            "overflow": self.overflow,
            "count": self.count,
            "sum": self.total,
            "max": self.max_value if self.count else None,
            "min": self.min_value if self.count else None,
        }

    def merge_snapshot(self, state: Dict[str, object]) -> None:
        """Fold another histogram's snapshot into this one (counts add)."""
        edges = [float(e) for e in state["edges"]]  # type: ignore[union-attr]
        if edges != list(self.buckets):
            raise MetricsMergeError(
                f"histogram {self.name!r} bucket mismatch: "
                f"{edges!r} vs {list(self.buckets)!r}"
            )
        if int(state["count"]) == 0:  # type: ignore[arg-type]
            return
        for i, n in enumerate(state["counts"]):  # type: ignore[arg-type]
            self.counts[i] += int(n)
        self.overflow += int(state["overflow"])  # type: ignore[arg-type]
        self.count += int(state["count"])  # type: ignore[arg-type]
        self.total += float(state["sum"])  # type: ignore[arg-type]
        # Same None-extreme guard as the gauge: empty-worker snapshots
        # must not clobber (or crash on) real extremes.
        incoming_max = state["max"]
        incoming_min = state["min"]
        if incoming_max is not None and float(incoming_max) > self.max_value:  # type: ignore[arg-type]
            self.max_value = float(incoming_max)  # type: ignore[arg-type]
        if incoming_min is not None and float(incoming_min) < self.min_value:  # type: ignore[arg-type]
            self.min_value = float(incoming_min)  # type: ignore[arg-type]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Histogram {self.name} n={self.count}>"


class MetricsRegistry:
    """Named metrics, created on first use, exportable as one dict."""

    def __init__(self):
        self._metrics: Dict[str, Union[Counter, Gauge, Histogram]] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get(name, Gauge)

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None) -> Histogram:
        """Get or create the histogram ``name`` (``buckets`` only on creation)."""
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, buckets if buckets is not None else LATENCY_BUCKETS)
            self._metrics[name] = metric
        elif not isinstance(metric, Histogram):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, not a Histogram"
            )
        return metric

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, not a {cls.__name__}"
            )
        return metric

    def get(self, name: str):
        """The metric registered under ``name``, or None."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        """All registered metric names, sorted."""
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """Snapshot of every metric, keyed by name."""
        return {name: self._metrics[name].as_dict() for name in self.names()}

    def to_json(self, indent: Optional[int] = None) -> str:
        """The :meth:`as_dict` snapshot serialized as JSON."""
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Lossless JSON-able state of every metric, keyed by name.

        ``MetricsRegistry().merge(r.snapshot()).snapshot()`` round-trips
        exactly; campaign workers ship these across the process boundary
        and the runner merges them into one registry.
        """
        return {name: self._metrics[name].snapshot() for name in self.names()}

    def merge(self, state: Dict[str, Dict[str, object]]) -> "MetricsRegistry":
        """Fold a :meth:`snapshot` into this registry (returns self).

        Each named metric is created on first sight with the snapshot's
        type, then folded additively — counters and histogram buckets
        sum, gauge extremes and update counts combine — so merging N
        disjoint worker snapshots counts every observation exactly once.
        """
        for name in sorted(state):
            entry = state[name]
            kind = entry["type"]
            if kind == "counter":
                self.counter(name).merge_snapshot(entry)
            elif kind == "gauge":
                self.gauge(name).merge_snapshot(entry)
            elif kind == "histogram":
                edges = [float(e) for e in entry["edges"]]  # type: ignore[union-attr]
                self.histogram(name, buckets=edges).merge_snapshot(entry)
            else:
                raise MetricsMergeError(f"metric {name!r} has unknown type {kind!r}")
        return self

    def summary_lines(self) -> List[str]:
        """Compact human-readable lines (what ``repro trace`` prints)."""
        lines = []
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                lines.append(f"{name}: {metric.value}")
            elif isinstance(metric, Gauge):
                extreme = f" (max {metric.max_value:g})" if metric.updates else ""
                lines.append(f"{name}: {metric.value:g}{extreme}")
            else:
                mean = f"{metric.mean:.6g}" if metric.count else "-"
                lines.append(f"{name}: n={metric.count} mean={mean}")
        return lines
