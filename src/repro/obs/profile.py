"""Deterministic sim-time profiling: where does simulated time go?

A :class:`SimProfiler` hangs off the engine as ``sim.profile`` and is
fed one call per dispatched event.  It attributes two deterministic
quantities to each **subsystem** (the module that owns the dispatched
callback) and each **process** (the named generator the callback
resumes):

- ``events`` — how many dispatches the subsystem/process received;
- ``sim_time`` — how far each dispatch advanced the virtual clock,
  i.e. the simulated time the rest of the system spent *waiting* for
  that subsystem's next move.  Summed over a run this decomposes the
  final clock value exactly.

Wall-clock cost per subsystem is tracked too, but — like everything
wall-based in this stack — it is volatile and excluded from
:meth:`SimProfiler.snapshot` unless explicitly requested, so profiles
of a deterministic run are byte-stable.

The profiler follows the observability layer's zero-cost contract:
``sim.profile`` is ``None`` by default, the engine's fast path checks
it once per :meth:`~repro.sim.engine.Simulator.run`, and attaching it
never changes dispatch order — golden run digests are unaffected.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

_MODULE_PREFIX = "repro."


class ProfileEntry:
    """Accumulated attribution for one subsystem or process."""

    __slots__ = ("events", "sim_time", "wall_time")

    def __init__(self) -> None:
        self.events = 0
        self.sim_time = 0.0
        self.wall_time = 0.0

    def add(self, advance: float, wall: float) -> None:
        self.events += 1
        self.sim_time += advance
        self.wall_time += wall


def _subsystem_of(callback: Any) -> str:
    """The subsystem key for a dispatched callback (module-based)."""
    module = getattr(callback, "__module__", None) or "unknown"
    if module.startswith(_MODULE_PREFIX):
        module = module[len(_MODULE_PREFIX):]
    return module


def _process_of(callback: Any) -> Optional[str]:
    """The owning process name, when the callback resumes one."""
    owner = getattr(callback, "__self__", None)
    if owner is None:
        return None
    name = getattr(owner, "name", None)
    # Process/Signal/Store owners all carry a ``name``; only processes
    # also carry ``alive``, which is what we attribute to.
    if name and hasattr(owner, "alive"):
        return str(name)
    return None


class SimProfiler:
    """Per-subsystem / per-process simulated-time attribution.

    Usage::

        profiler = SimProfiler()
        sim.profile = profiler
        scenario.run()
        for line in profiler.report_lines():
            print(line)
    """

    def __init__(self) -> None:
        self.subsystems: Dict[str, ProfileEntry] = {}
        self.processes: Dict[str, ProfileEntry] = {}
        self.total_events = 0
        self.total_sim_time = 0.0
        self._last_now = 0.0
        # callback object → resolved keys; dispatch loops reuse the same
        # bound methods heavily, so this caches the getattr walk.  The
        # cache is lookup-only (never iterated), so hashing by object
        # does not leak allocation order into any output.
        self._keys: Dict[Any, Tuple[str, Optional[str]]] = {}
        # Interned event types: the engine resolves each distinct
        # callback to a type id once (via :meth:`register_type`) and
        # then reports through :meth:`record_typed`, which is pure list
        # indexing — no callback or tuple-key hashing on the hot path.
        self._tid_subsystem: List[ProfileEntry] = []
        self._tid_process: List[Optional[ProfileEntry]] = []

    def register_type(self, callback: Any) -> int:
        """Intern one callback as an event-type id (engine hot-path API).

        Resolves the subsystem/process attribution walk once and binds
        the returned id directly to the accumulator entries, so
        :meth:`record_typed` never hashes anything.  Ids for callbacks
        with identical attribution share the same underlying entries,
        so duplicate registration (e.g. of an unhashable callback the
        engine cannot intern) only costs memory, never correctness.
        """
        subsystem_key = _subsystem_of(callback)
        process_key = _process_of(callback)
        entry = self.subsystems.get(subsystem_key)
        if entry is None:
            entry = self.subsystems[subsystem_key] = ProfileEntry()
        proc: Optional[ProfileEntry] = None
        if process_key is not None:
            proc = self.processes.get(process_key)
            if proc is None:
                proc = self.processes[process_key] = ProfileEntry()
        tid = len(self._tid_subsystem)
        self._tid_subsystem.append(entry)
        self._tid_process.append(proc)
        return tid

    def record_typed(self, tid: int, now: float, wall: float) -> None:
        """Attribute one dispatched event by interned type id."""
        advance = now - self._last_now
        if advance < 0.0:  # a fresh run after reset; don't go negative
            advance = 0.0
        self._last_now = now
        entry = self._tid_subsystem[tid]
        entry.events += 1
        entry.sim_time += advance
        entry.wall_time += wall
        proc = self._tid_process[tid]
        if proc is not None:
            proc.events += 1
            proc.sim_time += advance
            proc.wall_time += wall
        self.total_events += 1
        self.total_sim_time += advance

    def record(self, event: Any, now: float, wall: float) -> None:
        """Attribute one dispatched event (legacy object-keyed API)."""
        advance = now - self._last_now
        if advance < 0.0:  # a fresh run after reset; don't go negative
            advance = 0.0
        self._last_now = now
        callback = event.callback
        keys = self._keys.get(callback)
        if keys is None:
            keys = (_subsystem_of(callback), _process_of(callback))
            self._keys[callback] = keys
        subsystem_key, process_key = keys
        entry = self.subsystems.get(subsystem_key)
        if entry is None:
            entry = self.subsystems[subsystem_key] = ProfileEntry()
        entry.add(advance, wall)
        if process_key is not None:
            proc = self.processes.get(process_key)
            if proc is None:
                proc = self.processes[process_key] = ProfileEntry()
            proc.add(advance, wall)
        self.total_events += 1
        self.total_sim_time += advance

    # -- output ------------------------------------------------------------

    def snapshot(self, include_volatile: bool = False) -> Dict[str, Any]:
        """A plain-dict profile, deterministically ordered.

        Wall-clock sums are host-dependent and only included with
        ``include_volatile=True``.
        """

        def table(entries: Dict[str, ProfileEntry]) -> Dict[str, Dict[str, Any]]:
            out: Dict[str, Dict[str, Any]] = {}
            for key in sorted(entries):
                entry = entries[key]
                row: Dict[str, Any] = {
                    "events": entry.events,
                    "sim_time": entry.sim_time,
                }
                if include_volatile:
                    row["wall_time"] = entry.wall_time
                out[key] = row
            return out

        return {
            "total_events": self.total_events,
            "total_sim_time": self.total_sim_time,
            "subsystems": table(self.subsystems),
            "processes": table(self.processes),
        }

    def report_lines(self) -> List[str]:
        """Human-readable profile tables (sim-time descending)."""
        lines: List[str] = []

        def table(title: str, entries: Dict[str, ProfileEntry]) -> None:
            if not entries:
                return
            lines.append(f"{title}  (events / sim seconds)")
            ordered = sorted(
                entries.items(), key=lambda kv: (-kv[1].sim_time, kv[0])
            )
            for key, entry in ordered:
                lines.append(
                    f"  {key:<32} {entry.events:>8} {entry.sim_time:>12.6f}s"
                )

        lines.append(
            f"profiled {self.total_events} events over "
            f"{self.total_sim_time:.6f} simulated seconds"
        )
        table("by subsystem", self.subsystems)
        table("by process", self.processes)
        return lines
