"""repro.obs — the observability layer of the UMTS stack.

Three pieces, threaded through every subsystem of the reproduction:

- :class:`TraceBus` — structured events and spans stamped with
  sim-time (plus wall-time deltas for profiling), fanned out to
  pluggable sinks;
- :class:`MetricsRegistry` — counters, gauges and fixed-bucket
  histograms (vsys RPC latency, engine queue depth, per-slice
  marked/dropped packet counts), exportable to dict/JSON;
- :class:`FlightRecorder` — a bounded ring-buffer sink that freezes
  the last N events whenever an error event (a ``UmtsCommandError``,
  a failed dial phase) crosses the bus.

All hooks are zero-cost when nothing is attached: components check
``sim.trace``/``sim.metrics`` (both ``None`` by default) and the bus
short-circuits without sinks, so instrumented and uninstrumented runs
are bit-for-bit identical.

Quick start::

    from repro import OneLabScenario
    from repro.obs import Observability

    scenario = OneLabScenario(seed=3)
    obs = Observability(scenario.sim)
    obs.bind_node(scenario.napoli)
    events = obs.record_events()
    scenario.umts_command().start_blocking()
    print(obs.metrics.summary_lines())
"""

from __future__ import annotations

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    WALL_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.sinks import FlightRecorder, JsonlSink, ListSink
from repro.obs.trace import (
    KIND_ERROR,
    KIND_EVENT,
    KIND_SPAN_END,
    KIND_SPAN_START,
    KIND_TRANSITION,
    NULL_SPAN,
    NullSpan,
    Span,
    TraceBus,
    TraceEvent,
    format_event,
)


class Observability:
    """One-stop wiring: bus + registry + flight recorder onto a simulator.

    Construction installs ``sim.trace`` and ``sim.metrics`` and attaches
    a :class:`FlightRecorder`, which turns every instrumentation hook in
    the stack live.  Netfilter state is not reachable through the
    simulator, so nodes are bound explicitly with :meth:`bind_node`.
    """

    def __init__(self, sim, flight_capacity: int = 256):
        self.sim = sim
        self.trace = TraceBus(sim)
        self.metrics = MetricsRegistry()
        self.flight = FlightRecorder(capacity=flight_capacity)
        self.trace.attach(self.flight)
        sim.trace = self.trace
        sim.metrics = self.metrics

    def bind_node(self, node) -> None:
        """Point a PlanetLab node's netfilter dispatcher at the registry."""
        self.bind_netfilter(node.stack.netfilter)

    def bind_netfilter(self, netfilter) -> None:
        """Enable mark/drop counters on one netfilter dispatcher."""
        netfilter.metrics = self.metrics

    def record_events(self) -> ListSink:
        """Attach and return an in-memory :class:`ListSink`."""
        return self.trace.attach(ListSink())

    def export_jsonl(self, target) -> JsonlSink:
        """Attach and return a :class:`JsonlSink` writing to ``target``."""
        return self.trace.attach(JsonlSink(target))

    def detach(self) -> None:
        """Remove the hooks from the simulator (instrumentation goes cold)."""
        self.sim.trace = None
        self.sim.metrics = None


__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "KIND_ERROR",
    "KIND_EVENT",
    "KIND_SPAN_END",
    "KIND_SPAN_START",
    "KIND_TRANSITION",
    "LATENCY_BUCKETS",
    "ListSink",
    "MetricsRegistry",
    "NULL_SPAN",
    "NullSpan",
    "Observability",
    "Span",
    "TraceBus",
    "TraceEvent",
    "WALL_BUCKETS",
    "format_event",
]
