"""repro.obs — the observability layer of the UMTS stack.

Recording, threaded through every subsystem of the reproduction:

- :class:`TraceBus` — structured events and spans stamped with
  sim-time (plus wall-time deltas for profiling), fanned out to
  pluggable sinks;
- :class:`MetricsRegistry` — counters, gauges and fixed-bucket
  histograms (vsys RPC latency, engine queue depth, per-slice
  marked/dropped packet counts), exportable to dict/JSON;
- :class:`FlightRecorder` — a bounded ring-buffer sink that freezes
  the last N events whenever an error event (a ``UmtsCommandError``,
  a failed dial phase) crosses the bus.

Analysis and export, on top of the recordings:

- :mod:`repro.obs.streaming` — constant-memory online aggregators
  (windowed QoS stats, P² quantile sketches) fed sample-by-sample;
- :mod:`repro.obs.exporter` — deterministic OpenMetrics text
  exposition of any registry snapshot;
- :mod:`repro.obs.timeline` — phase trees and critical-path analysis
  reconstructed from recorded spans;
- :class:`SimProfiler` — per-subsystem/per-process simulated-time
  attribution, hung off ``sim.profile``.

All hooks are zero-cost when nothing is attached: components check
``sim.trace``/``sim.metrics`` (both ``None`` by default) and the bus
short-circuits without sinks, so instrumented and uninstrumented runs
are bit-for-bit identical.

Quick start::

    from repro import OneLabScenario
    from repro.obs import Observability

    scenario = OneLabScenario(seed=3)
    obs = Observability(scenario.sim)
    obs.bind_node(scenario.napoli)
    events = obs.record_events()
    scenario.umts_command().start_blocking()
    print(obs.metrics.summary_lines())
"""

from __future__ import annotations

from typing import Optional

from repro.obs.exporter import render_openmetrics, write_openmetrics
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    WALL_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsMergeError,
    MetricsRegistry,
)
from repro.obs.profile import SimProfiler
from repro.obs.sinks import DEFAULT_FLIGHT_CAPACITY, FlightRecorder, JsonlSink, ListSink
from repro.obs.streaming import P2Quantile, QuantileSketch, StreamingStats, StreamingWindows
from repro.obs.timeline import Timeline
from repro.obs.trace import (
    KIND_ERROR,
    KIND_EVENT,
    KIND_SPAN_END,
    KIND_SPAN_START,
    KIND_TRANSITION,
    NULL_SPAN,
    NullSpan,
    Span,
    TraceBus,
    TraceEvent,
    format_event,
)


class Observability:
    """One-stop wiring: bus + registry + flight recorder onto a simulator.

    Construction installs ``sim.trace`` and ``sim.metrics`` and attaches
    a :class:`FlightRecorder`, which turns every instrumentation hook in
    the stack live.  Netfilter state is not reachable through the
    simulator, so nodes are bound explicitly with :meth:`bind_node`.
    """

    def __init__(self, sim, flight_capacity: int = DEFAULT_FLIGHT_CAPACITY):
        self.sim = sim
        self.trace = TraceBus(sim)
        self.metrics = MetricsRegistry()
        self.flight = FlightRecorder(capacity=flight_capacity)
        self.trace.attach(self.flight)
        self.profiler: Optional[SimProfiler] = None
        sim.trace = self.trace
        sim.metrics = self.metrics

    def enable_profiling(self) -> SimProfiler:
        """Attach (or return the existing) :class:`SimProfiler`."""
        if self.profiler is None:
            self.profiler = SimProfiler()
            self.sim.profile = self.profiler
        return self.profiler

    def bind_node(self, node) -> None:
        """Point a PlanetLab node's netfilter dispatcher at the registry."""
        self.bind_netfilter(node.stack.netfilter)

    def bind_netfilter(self, netfilter) -> None:
        """Enable mark/drop counters on one netfilter dispatcher."""
        netfilter.metrics = self.metrics

    def record_events(self) -> ListSink:
        """Attach and return an in-memory :class:`ListSink`."""
        return self.trace.attach(ListSink())

    def export_jsonl(self, target) -> JsonlSink:
        """Attach and return a :class:`JsonlSink` writing to ``target``."""
        return self.trace.attach(JsonlSink(target))

    def timeline(self, sink: ListSink) -> Timeline:
        """The phase tree reconstructed from a recorded sink."""
        return Timeline.from_events(sink.events)

    def openmetrics(self, include_volatile: bool = False) -> str:
        """The registry as OpenMetrics text exposition."""
        return render_openmetrics(self.metrics, include_volatile=include_volatile)

    def detach(self) -> None:
        """Remove the hooks from the simulator (instrumentation goes cold)."""
        self.sim.trace = None
        self.sim.metrics = None
        self.sim.profile = None


__all__ = [
    "Counter",
    "DEFAULT_FLIGHT_CAPACITY",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "KIND_ERROR",
    "KIND_EVENT",
    "KIND_SPAN_END",
    "KIND_SPAN_START",
    "KIND_TRANSITION",
    "LATENCY_BUCKETS",
    "ListSink",
    "MetricsMergeError",
    "MetricsRegistry",
    "NULL_SPAN",
    "NullSpan",
    "Observability",
    "P2Quantile",
    "QuantileSketch",
    "SimProfiler",
    "Span",
    "StreamingStats",
    "StreamingWindows",
    "Timeline",
    "TraceBus",
    "TraceEvent",
    "WALL_BUCKETS",
    "format_event",
    "render_openmetrics",
    "write_openmetrics",
]
