"""The TraceBus: structured events and spans stamped with sim-time.

Every instrumented component emits through the :class:`TraceBus` hung
off the simulator (``sim.trace``).  Emission is **zero-cost when no
sink is attached**: ``emit`` returns immediately and ``span`` hands out
a shared no-op span, so tier-1 determinism and benchmark numbers are
unaffected by the mere presence of the instrumentation hooks.

Events carry two clocks: ``sim_time`` (the virtual clock, what the
paper's phases are measured in) and ``wall_time`` (``perf_counter``,
only sampled while a sink is attached) so span ends can report both the
simulated duration of a dial-up phase and the real CPU cost of
simulating it.
"""

from __future__ import annotations

import itertools
import time
from typing import Any, Dict, List, Optional

#: Event kinds emitted by the instrumentation hooks.
KIND_EVENT = "event"
KIND_SPAN_START = "span_start"
KIND_SPAN_END = "span_end"
KIND_TRANSITION = "transition"
KIND_ERROR = "error"


class TraceEvent:
    """One structured trace record."""

    __slots__ = (
        "seq",
        "sim_time",
        "wall_time",
        "kind",
        "name",
        "status",
        "span_id",
        "parent_id",
        "fields",
    )

    def __init__(
        self,
        seq: int,
        sim_time: float,
        wall_time: float,
        kind: str,
        name: str,
        status: Optional[str] = None,
        span_id: Optional[int] = None,
        parent_id: Optional[int] = None,
        fields: Optional[Dict[str, Any]] = None,
    ):
        self.seq = seq
        self.sim_time = sim_time
        self.wall_time = wall_time
        self.kind = kind
        self.name = name
        self.status = status
        self.span_id = span_id
        self.parent_id = parent_id
        self.fields = fields or {}

    def to_dict(self) -> Dict[str, Any]:
        """The event as a plain dict (what the JSONL exporter writes)."""
        out: Dict[str, Any] = {
            "seq": self.seq,
            "t": self.sim_time,
            "kind": self.kind,
            "name": self.name,
        }
        if self.status is not None:
            out["status"] = self.status
        if self.span_id is not None:
            out["span"] = self.span_id
        if self.parent_id is not None:
            out["parent"] = self.parent_id
        if self.fields:
            out["fields"] = dict(self.fields)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TraceEvent #{self.seq} t={self.sim_time:.3f} {self.kind} {self.name}>"


def format_event(event: TraceEvent) -> str:
    """One human-readable line for an event (CLI and flight-recorder dumps)."""
    status = f" [{event.status}]" if event.status else ""
    parts = []
    for key, value in event.fields.items():
        if isinstance(value, float):
            parts.append(f"{key}={value:.4g}")
        else:
            parts.append(f"{key}={value}")
    fields = (" " + " ".join(parts)) if parts else ""
    return f"[{event.sim_time:10.3f}s] {event.kind:<11} {event.name}{status}{fields}"


class Span:
    """A live span handle: end it (or use it as a context manager).

    The start event is emitted on creation; :meth:`end` emits the
    matching ``span_end`` carrying both the simulated duration and the
    wall-clock cost of the phase.
    """

    __slots__ = ("_bus", "span_id", "name", "parent_id", "_start_sim", "_start_wall", "_ended")

    def __init__(self, bus: "TraceBus", span_id: int, name: str, parent_id: Optional[int]):
        self._bus = bus
        self.span_id = span_id
        self.name = name
        self.parent_id = parent_id
        self._start_sim = bus.sim.now
        self._start_wall = time.perf_counter()
        self._ended = False

    def annotate(self, **fields: Any) -> None:
        """Emit a point event attached to this span."""
        self._bus.emit(self.name, kind=KIND_EVENT, span_id=self.span_id, **fields)

    def end(self, status: str = "ok", **fields: Any) -> None:
        """Close the span.  Idempotent; extra fields ride on the end event."""
        if self._ended:
            return
        self._ended = True
        fields.setdefault("duration", self._bus.sim.now - self._start_sim)
        fields.setdefault("wall", time.perf_counter() - self._start_wall)
        self._bus.emit(
            self.name,
            kind=KIND_SPAN_END,
            status=status,
            span_id=self.span_id,
            parent_id=self.parent_id,
            **fields,
        )

    def fail(self, reason: str = "", **fields: Any) -> None:
        """Close the span with status ``error`` (flight-recorder trigger)."""
        if reason:
            fields.setdefault("reason", reason)
        self.end(status="error", **fields)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.fail(reason=str(exc))
        else:
            self.end()


class NullSpan:
    """The shared no-op span handed out while no sink is attached."""

    __slots__ = ()

    span_id = None
    parent_id = None
    name = ""

    def annotate(self, **fields: Any) -> None:
        """No-op."""

    def end(self, status: str = "ok", **fields: Any) -> None:
        """No-op."""

    def fail(self, reason: str = "", **fields: Any) -> None:
        """No-op."""

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = NullSpan()


class TraceBus:
    """Fan-out point between instrumented components and trace sinks."""

    def __init__(self, sim):
        self.sim = sim
        self._sinks: List[Any] = []
        self._seq = itertools.count()
        self._span_ids = itertools.count(1)

    @property
    def enabled(self) -> bool:
        """True while at least one sink is attached."""
        return bool(self._sinks)

    def attach(self, sink) -> Any:
        """Attach a sink (anything with ``on_event(event)``)."""
        self._sinks.append(sink)
        return sink

    def detach(self, sink) -> None:
        """Detach a previously attached sink.  Idempotent."""
        if sink in self._sinks:
            self._sinks.remove(sink)

    def emit(
        self,
        name: str,
        kind: str = KIND_EVENT,
        status: Optional[str] = None,
        span_id: Optional[int] = None,
        parent_id: Optional[int] = None,
        **fields: Any,
    ) -> Optional[TraceEvent]:
        """Deliver one event to every sink; no-op without sinks."""
        if not self._sinks:
            return None
        event = TraceEvent(
            next(self._seq),
            self.sim.now,
            time.perf_counter(),
            kind,
            name,
            status=status,
            span_id=span_id,
            parent_id=parent_id,
            fields=fields,
        )
        for sink in self._sinks:
            sink.on_event(event)
        return event

    def error(self, name: str, **fields: Any):
        """Emit an ``error``-kind event (what flight recorders trigger on)."""
        return self.emit(name, kind=KIND_ERROR, status="error", **fields)

    def span(self, name: str, parent: Optional[Span] = None, **fields: Any):
        """Open a span (no-op span when no sink is attached)."""
        if not self._sinks:
            return NULL_SPAN
        parent_id = parent.span_id if parent is not None else None
        span_id = next(self._span_ids)
        self.emit(
            name, kind=KIND_SPAN_START, span_id=span_id, parent_id=parent_id, **fields
        )
        return Span(self, span_id, name, parent_id)
