"""OpenMetrics text exposition for :class:`MetricsRegistry` snapshots.

Renders any registry — a live one, or the key-ordered fold of worker
snapshots a :func:`repro.parallel.runner.run_campaign` produces — to
the Prometheus/OpenMetrics text format.  Two properties matter here:

- **Deterministic bytes.**  Families are emitted in sorted-name order
  and every number is formatted with shortest-round-trip ``repr``, so
  the exposition of a deterministic campaign is byte-identical at any
  ``-j`` and across double runs (the CI gate ``cmp``\\ s the two files).
- **Volatile metrics are opt-in.**  Names carrying wall-clock content
  (``…wall…``) are host-dependent by construction; they are dropped
  from the default exposition so the byte-identity contract holds, and
  re-included with ``include_volatile=True`` for live dashboards.

Metric names in the registry use dotted lowercase
(``umts.cmd.start``); OpenMetrics names must match
``[a-zA-Z_:][a-zA-Z0-9_:]*``, so dots become underscores and every
family gains the ``repro_`` namespace prefix.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Union

from repro.obs.metrics import MetricsRegistry

#: Registry metric names matching this are wall-clock-dependent and
#: excluded from the deterministic exposition by default.
VOLATILE_NAME_RE = re.compile(r"(^|[._])wall([._]|$)|wall_seconds")

_BAD_CHARS_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: Every exposition starts with this namespace.
NAMESPACE = "repro"

Snapshot = Dict[str, Dict[str, object]]


def is_volatile(name: str) -> bool:
    """Whether a registry metric name carries wall-clock content."""
    return VOLATILE_NAME_RE.search(name) is not None


def openmetrics_name(name: str) -> str:
    """A registry name as an OpenMetrics family name (namespaced)."""
    flat = _BAD_CHARS_RE.sub("_", name.replace(".", "_"))
    if not flat or not (flat[0].isalpha() or flat[0] in "_:"):
        flat = "_" + flat
    return f"{NAMESPACE}_{flat}"


def format_value(value: object) -> str:
    """One number, shortest-round-trip, OpenMetrics vocabulary."""
    if isinstance(value, bool):  # bools are ints; keep them numeric
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    number = float(value)  # type: ignore[arg-type]
    if math.isnan(number):
        return "NaN"
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _counter_lines(name: str, entry: Dict[str, object]) -> List[str]:
    family = openmetrics_name(name)
    return [
        f"# TYPE {family} counter",
        f"{family}_total {format_value(entry['value'])}",
    ]


def _gauge_lines(name: str, entry: Dict[str, object]) -> List[str]:
    family = openmetrics_name(name)
    lines = [
        f"# TYPE {family} gauge",
        f"{family} {format_value(entry['value'])}",
    ]
    if entry.get("max") is not None:
        lines.append(f"{family}_max {format_value(entry['max'])}")
    if entry.get("min") is not None:
        lines.append(f"{family}_min {format_value(entry['min'])}")
    return lines


def _histogram_lines(name: str, entry: Dict[str, object]) -> List[str]:
    family = openmetrics_name(name)
    lines = [f"# TYPE {family} histogram"]
    cumulative = 0
    edges = entry["edges"]
    counts = entry["counts"]
    for edge, count in zip(edges, counts):  # type: ignore[arg-type]
        cumulative += int(count)  # type: ignore[arg-type]
        lines.append(
            f'{family}_bucket{{le="{format_value(edge)}"}} {cumulative}'
        )
    cumulative += int(entry["overflow"])  # type: ignore[arg-type]
    lines.append(f'{family}_bucket{{le="+Inf"}} {cumulative}')
    lines.append(f"{family}_count {format_value(entry['count'])}")
    lines.append(f"{family}_sum {format_value(entry['sum'])}")
    return lines


_RENDERERS = {
    "counter": _counter_lines,
    "gauge": _gauge_lines,
    "histogram": _histogram_lines,
}


def render_openmetrics(
    source: Union[MetricsRegistry, Snapshot],
    include_volatile: bool = False,
) -> str:
    """The full text exposition (terminated by ``# EOF``).

    ``source`` is a registry or a :meth:`MetricsRegistry.snapshot`
    dict — the latter is what campaign runners and cache documents
    carry, so exports can happen far from any live simulator.
    """
    snapshot: Snapshot = (
        source.snapshot() if isinstance(source, MetricsRegistry) else source
    )
    lines: List[str] = []
    for name in sorted(snapshot):
        if not include_volatile and is_volatile(name):
            continue
        entry = snapshot[name]
        kind = str(entry["type"])
        renderer = _RENDERERS.get(kind)
        if renderer is None:
            raise ValueError(f"metric {name!r} has unknown type {kind!r}")
        lines.extend(renderer(name, entry))
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(
    source: Union[MetricsRegistry, Snapshot],
    path: str,
    include_volatile: bool = False,
) -> int:
    """Write the exposition to ``path``; returns the byte count."""
    text = render_openmetrics(source, include_volatile=include_volatile)
    data = text.encode("utf-8")
    with open(path, "wb") as handle:
        handle.write(data)
    return len(data)
