"""Span timelines: causal phase trees and critical-path analysis.

The paper's evaluation explains *where* UMTS datacall time goes —
registration, ATD dial, PPP LCP/IPCP negotiation, route installation.
The TraceBus records each of those phases as a span; this module
reconstructs the phase tree from a recorded event stream (a
:class:`~repro.obs.sinks.ListSink`, a flight-recorder dump, or parsed
JSONL) and answers the paper's question quantitatively:

- per-phase simulated durations (and how often each phase ran),
- the **critical path** — the chain of longest phases from the root
  span down, i.e. what to optimise to make bring-up faster,
- retry and fault attribution: every ``umts.retry`` and
  ``fault.injected`` event is charged to the innermost span open when
  it fired, so a chaos run shows exactly which phase absorbed the
  injected trouble.

Spans in the stack rarely carry explicit parent ids (phases are
sequential generator code, not nested ``with`` blocks), so nesting is
reconstructed **temporally**: a span that starts while another is open
is its child.  Explicit ``parent`` ids, when present, win.

Everything here is simulated-time only — wall-clock fields are
ignored — so timeline reports are deterministic per seed.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.trace import KIND_ERROR, KIND_SPAN_END, KIND_SPAN_START

#: Point-event names attributed specially to their enclosing phase.
RETRY_EVENT = "umts.retry"
FAULT_EVENT = "fault.injected"


class PhaseNode:
    """One span instance in the reconstructed phase tree."""

    __slots__ = (
        "name", "span_id", "start", "end", "status", "fields",
        "parent", "children", "retries", "faults", "errors", "events",
    )

    def __init__(self, name: str, span_id: Optional[int], start: float) -> None:
        self.name = name
        self.span_id = span_id
        self.start = start
        self.end: Optional[float] = None
        self.status: Optional[str] = None
        self.fields: Dict[str, Any] = {}
        self.parent: Optional["PhaseNode"] = None
        self.children: List["PhaseNode"] = []
        self.retries = 0
        self.faults = 0
        self.errors = 0
        self.events = 0

    @property
    def duration(self) -> Optional[float]:
        """Simulated seconds from start to end (None while open)."""
        if self.end is None:
            return None
        return self.end - self.start

    @property
    def self_time(self) -> Optional[float]:
        """Duration not covered by closed child spans."""
        if self.duration is None:
            return None
        child_total = sum(c.duration or 0.0 for c in self.children)
        return max(0.0, self.duration - child_total)

    def walk(self) -> Iterable["PhaseNode"]:
        """This node and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<PhaseNode {self.name} dur={self.duration}>"


def _normalize(event: Any) -> Dict[str, Any]:
    """One event as the JSONL-shaped dict the builder consumes."""
    if isinstance(event, dict):
        return event
    return event.to_dict()


class Timeline:
    """The reconstructed phase tree of one recorded run."""

    def __init__(self, roots: List[PhaseNode], events_seen: int) -> None:
        self.roots = roots
        self.events_seen = events_seen

    # -- construction ------------------------------------------------------

    @classmethod
    def from_events(cls, events: Iterable[Any]) -> "Timeline":
        """Build the tree from TraceEvents or JSONL-parsed dicts."""
        roots: List[PhaseNode] = []
        open_by_id: Dict[int, PhaseNode] = {}
        open_stack: List[PhaseNode] = []
        count = 0
        for raw in events:
            record = _normalize(raw)
            count += 1
            kind = record.get("kind")
            time = float(record.get("t", 0.0))
            name = str(record.get("name", ""))
            span_id = record.get("span")
            if kind == KIND_SPAN_START:
                node = PhaseNode(name, span_id, time)
                parent_id = record.get("parent")
                parent = (
                    open_by_id.get(parent_id)
                    if parent_id is not None
                    else (open_stack[-1] if open_stack else None)
                )
                if parent is not None:
                    node.parent = parent
                    parent.children.append(node)
                else:
                    roots.append(node)
                if span_id is not None:
                    open_by_id[span_id] = node
                open_stack.append(node)
            elif kind == KIND_SPAN_END:
                node = open_by_id.pop(span_id, None) if span_id is not None else None
                if node is None:
                    continue  # end without a recorded start (truncated ring)
                node.end = time
                node.status = record.get("status")
                fields = record.get("fields")
                if fields:
                    node.fields.update(
                        {k: v for k, v in fields.items() if k != "wall"}
                    )
                if node in open_stack:
                    open_stack.remove(node)
            else:
                target: Optional[PhaseNode] = None
                if span_id is not None:
                    target = open_by_id.get(span_id)
                if target is None and open_stack:
                    target = open_stack[-1]
                if target is None:
                    continue
                target.events += 1
                if name == RETRY_EVENT:
                    target.retries += 1
                elif name == FAULT_EVENT:
                    target.faults += 1
                if kind == KIND_ERROR:
                    target.errors += 1
        return cls(roots, count)

    # -- queries -----------------------------------------------------------

    def all_phases(self) -> List[PhaseNode]:
        """Every node, depth-first across roots."""
        out: List[PhaseNode] = []
        for root in self.roots:
            out.extend(root.walk())
        return out

    def phase_totals(self) -> Dict[str, Tuple[int, float]]:
        """name → (instances, total closed duration), sorted by name."""
        totals: Dict[str, Tuple[int, float]] = {}
        for node in self.all_phases():
            count, total = totals.get(node.name, (0, 0.0))
            totals[node.name] = (count + 1, total + (node.duration or 0.0))
        return dict(sorted(totals.items()))

    def find(self, name: str) -> List[PhaseNode]:
        """Every instance of the phase ``name``."""
        return [node for node in self.all_phases() if node.name == name]

    def critical_path(self) -> List[PhaseNode]:
        """The chain of longest phases from the longest root down.

        At each level the child with the largest closed duration is
        followed (ties break toward the earlier span, which keeps the
        report deterministic).  This is the sequence of phases that
        bounds bring-up time — shorten anything on it and the whole
        timeline shrinks.
        """
        closed = [r for r in self.roots if r.duration is not None]
        if not closed:
            return []
        path: List[PhaseNode] = []
        node: Optional[PhaseNode] = max(closed, key=lambda n: (n.duration or 0.0))
        while node is not None:
            path.append(node)
            candidates = [c for c in node.children if c.duration is not None]
            if not candidates:
                break
            best = candidates[0]
            for child in candidates[1:]:
                if (child.duration or 0.0) > (best.duration or 0.0):
                    best = child
            node = best
        return path

    def attribution(self) -> Dict[str, Dict[str, int]]:
        """Per-phase retry/fault/error counts (phases with any, sorted)."""
        out: Dict[str, Dict[str, int]] = {}
        for node in self.all_phases():
            if not (node.retries or node.faults or node.errors):
                continue
            entry = out.setdefault(
                node.name, {"retries": 0, "faults": 0, "errors": 0}
            )
            entry["retries"] += node.retries
            entry["faults"] += node.faults
            entry["errors"] += node.errors
        return dict(sorted(out.items()))

    # -- reports -----------------------------------------------------------

    def records(self) -> List[Dict[str, Any]]:
        """JSONL-ready phase records (deterministic order and content)."""
        out = []
        critical = self.critical_path()
        for node in self.all_phases():
            out.append({
                "record": "phase",
                "phase": node.name,
                "start": node.start,
                "duration": node.duration,
                "status": node.status,
                "depth": _depth(node),
                "retries": node.retries,
                "faults": node.faults,
                "errors": node.errors,
                "critical": any(node is c for c in critical),
            })
        return out

    def report_lines(self) -> List[str]:
        """The human-readable timeline: tree, critical path, attribution."""
        lines: List[str] = []
        critical = self.critical_path()
        for root in self.roots:
            for node in root.walk():
                indent = "  " * _depth(node)
                duration = (
                    f"{node.duration:9.3f}s" if node.duration is not None
                    else "   (open)"
                )
                marker = " *" if any(node is c for c in critical) else ""
                notes = []
                if node.retries:
                    notes.append(f"retries={node.retries}")
                if node.faults:
                    notes.append(f"faults={node.faults}")
                if node.status and node.status != "ok":
                    notes.append(f"status={node.status}")
                suffix = ("  " + " ".join(notes)) if notes else ""
                lines.append(f"{duration}  {indent}{node.name}{marker}{suffix}")
        path = self.critical_path()
        if path:
            chain = " > ".join(node.name for node in path)
            total = path[0].duration or 0.0
            lines.append(f"critical path: {chain} ({total:.3f}s)")
        attribution = self.attribution()
        if attribution:
            lines.append("attribution:")
            for name, entry in attribution.items():
                parts = " ".join(
                    f"{key}={value}" for key, value in entry.items() if value
                )
                lines.append(f"  {name}: {parts}")
        return lines


def _depth(node: PhaseNode) -> int:
    depth = 0
    current = node.parent
    while current is not None:
        depth += 1
        current = current.parent
    return depth
