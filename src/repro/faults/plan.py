"""Fault plans: what to break, when, and how often.

A :class:`FaultPlan` is a declarative list of :class:`FaultSpec`
entries, each naming an *injection point* (``serial``, ``registration``,
``dial``, ``ppp``, ``vsys``, ``session``, ``fleet``) and a *mode* at
that point,
plus an optional activation window and shot count.  Plans are written
in a compact spec grammar::

    FaultPlan.from_spec(
        "registration:cme_error@t=2.0,count=2",
        "ppp:lcp_drop@t=0,for=15",
        "session:drop@t=40",
    )

Grammar: ``point:mode[@key=value[,key=value...]]`` with keys

``t``      activation time in simulated seconds (default 0.0);
``for``    window length in seconds (default: open-ended);
``count``  number of shots before the spec is exhausted (default:
           unlimited for passive points, one for triggered modes);
``p``      per-opportunity firing probability in (0, 1]; draws come
           from the named RNG stream the plan is installed with.

Installing a plan hangs a :class:`~repro.faults.registry.FaultRegistry`
off the simulator (``sim.faults``), mirroring the ``sim.trace`` /
``sim.metrics`` zero-cost contract: components check the attribute and
do nothing when it is ``None``, so unfaulted runs stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.engine import Simulator

#: Every valid (point, mode) pair; ``from_spec`` rejects anything else
#: so a typo cannot silently produce a fault that never fires.
CATALOG: Dict[str, Tuple[str, ...]] = {
    # drop/garble hit any item; at_drop/latency hit AT lines only (the
    # MobileAtlas remote-SIM tunnel — see repro.modem.serial).
    "serial": ("drop", "garble", "at_drop", "latency"),
    "registration": ("cme_error", "denied", "searching"),
    "dial": ("no_carrier",),
    "ppp": ("lcp_drop", "ipcp_stall"),
    "vsys": ("truncate_request", "drop_response"),
    "session": ("drop", "rab_preempt", "refuse"),
    "fleet": ("node_kill",),
}

#: (point, mode) pairs delivered by activation events to subscribers
#: (the operator model) instead of being polled via ``fire``.
TRIGGERED: Tuple[Tuple[str, str], ...] = (
    ("session", "drop"),
    ("session", "rab_preempt"),
    ("fleet", "node_kill"),
)


class FaultSpecError(ValueError):
    """A spec string does not parse or names an unknown point/mode."""


class Garbled:
    """Marker wrapping an item destroyed in transit.

    The host side treats a garbled line as noise (chat skips it, the
    PPP transport counts and drops it — the HDLC FCS would have
    rejected the frame), so a garble behaves like a drop with evidence.
    """

    __slots__ = ("original",)

    def __init__(self, original: Any) -> None:
        self.original = original

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Garbled {self.original!r}>"


@dataclass
class FaultSpec:
    """One fault: where, what, when, and how many times."""

    point: str
    mode: str
    at: float = 0.0
    duration: Optional[float] = None
    count: Optional[int] = None
    probability: Optional[float] = None
    params: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        modes = CATALOG.get(self.point)
        if modes is None:
            raise FaultSpecError(
                f"unknown fault point {self.point!r} (known: {', '.join(CATALOG)})"
            )
        if self.mode not in modes:
            raise FaultSpecError(
                f"unknown mode {self.mode!r} for point {self.point!r} "
                f"(known: {', '.join(modes)})"
            )
        if self.at < 0:
            raise FaultSpecError(f"activation time must be >= 0, got {self.at}")
        if self.duration is not None and self.duration < 0:
            raise FaultSpecError(f"duration must be >= 0, got {self.duration}")
        if self.count is not None and self.count < 1:
            raise FaultSpecError(f"count must be >= 1, got {self.count}")
        if self.probability is not None and not 0 < self.probability <= 1:
            raise FaultSpecError(
                f"probability must be in (0, 1], got {self.probability}"
            )

    @property
    def key(self) -> str:
        """Stable ``point:mode`` label (trace fields, fired counters)."""
        return f"{self.point}:{self.mode}"

    @property
    def triggered(self) -> bool:
        """Whether this spec is delivered to subscribers at ``at``."""
        return (self.point, self.mode) in TRIGGERED

    def active_at(self, now: float) -> bool:
        """Whether ``now`` falls inside the activation window."""
        if now < self.at:
            return False
        if self.duration is not None and now > self.at + self.duration:
            return False
        return True

    def __str__(self) -> str:
        extra = [f"t={self.at:g}"]
        if self.duration is not None:
            extra.append(f"for={self.duration:g}")
        if self.count is not None:
            extra.append(f"count={self.count}")
        if self.probability is not None:
            extra.append(f"p={self.probability:g}")
        extra.extend(f"{k}={v}" for k, v in self.params.items())
        return f"{self.key}@{','.join(extra)}"


def _parse_one(spec: str) -> FaultSpec:
    head, _, tail = spec.partition("@")
    point, sep, mode = head.partition(":")
    if not sep or not point.strip() or not mode.strip():
        raise FaultSpecError(f"expected 'point:mode[@k=v,...]', got {spec!r}")
    kwargs: Dict[str, Any] = {"point": point.strip(), "mode": mode.strip()}
    params: Dict[str, str] = {}
    if tail:
        for pair in tail.split(","):
            key, sep, value = pair.partition("=")
            key, value = key.strip(), value.strip()
            if not sep or not key or not value:
                raise FaultSpecError(f"expected 'key=value' in {spec!r}, got {pair!r}")
            try:
                if key == "t":
                    kwargs["at"] = float(value)
                elif key == "for":
                    kwargs["duration"] = float(value)
                elif key == "count":
                    kwargs["count"] = int(value)
                elif key == "p":
                    kwargs["probability"] = float(value)
                else:
                    params[key] = value
            except ValueError as exc:
                raise FaultSpecError(f"bad value for {key!r} in {spec!r}: {exc}") from None
    kwargs["params"] = params
    return FaultSpec(**kwargs)


class FaultPlan:
    """An ordered list of fault specs for one scenario run."""

    def __init__(self, specs: Optional[List[FaultSpec]] = None) -> None:
        self.specs: List[FaultSpec] = list(specs or [])

    @classmethod
    def from_spec(cls, *specs: str) -> "FaultPlan":
        """Parse spec strings (see the module docstring for the grammar)."""
        return cls([_parse_one(spec) for spec in specs])

    def install(self, sim: Simulator, rng: Any = None) -> Any:
        """Attach a registry for this plan as ``sim.faults``.

        ``rng`` (a seeded ``random.Random``, typically a
        ``RandomStreams`` named stream) is required when any spec uses a
        ``p=`` probability; deterministic draws keep faulted runs
        bit-identical per seed.
        """
        from repro.faults.registry import FaultRegistry

        if rng is None and any(s.probability is not None for s in self.specs):
            raise FaultSpecError(
                "plan has probabilistic specs; install with a named RNG stream"
            )
        registry = FaultRegistry(sim, self.specs, rng=rng)
        sim.faults = registry
        for spec in self.specs:
            if spec.triggered:
                sim.post(max(0.0, spec.at - sim.now), registry._activate, spec)
        return registry

    def __len__(self) -> int:
        return len(self.specs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FaultPlan {[str(s) for s in self.specs]}>"
