"""The chaos campaign: the OneLab scenario under declared faults.

Each :class:`ChaosScenario` pairs a :class:`~repro.faults.plan.FaultPlan`
with an expectation — the dial-up stack either **recovers** (service is
delivered despite the faults) or **degrades cleanly** (a terminal
error, no stale lock/rules/interface).  The one outcome that is never
acceptable is a **hung** driver: every layer owns a deadline or an
attempt budget precisely so that a silent modem, a dead FIFO peer or a
lost carrier cannot wedge ``umts start`` forever.

The campaign is seed-deterministic end to end: every scenario runs the
same testbed seed, jitter comes from named RNG streams, and the full
trace (minus wall-clock fields) is folded into a SHA-256 digest —
``repro chaos --check`` runs every scenario twice and requires
bit-identical recovery timelines.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.isolation import UMTS_TABLE
from repro.core.supervisor import ConnectionSupervisor
from repro.faults.plan import FaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceBus, TraceEvent
from repro.sim.process import spawn
from repro.testbed.scenarios import DEFAULT_SLICE_NAME, OneLabScenario

#: Outcome labels (also the JSONL vocabulary).
RECOVERED = "recovered"
DEGRADED = "degraded"
HUNG = "hung"
DIRTY = "dirty"


@dataclass(frozen=True)
class ChaosScenario:
    """One campaign entry: a fault plan plus the expected outcome."""

    name: str
    description: str
    specs: Tuple[str, ...]
    expected: str
    supervise: bool = False
    hold: float = 60.0
    deadline: float = 600.0
    seed: int = 3


#: The built-in single-fault matrix.  ``expected`` encodes the contract:
#: *recovered* — retry/backoff (or FSM retransmission, or the
#: supervisor) absorbs the fault and service is delivered end to end;
#: *degraded* — the fault is unrecoverable within the attempt budget,
#: and the stack reports a terminal error with no state left behind.
BUILTIN_SCENARIOS: Tuple[ChaosScenario, ...] = (
    ChaosScenario(
        "baseline",
        "no faults at all: the control run the campaign's digests anchor to",
        (),
        RECOVERED,
    ),
    ChaosScenario(
        "serial_drop",
        "the modem swallows its first two response lines (dead firmware moment)",
        ("serial:drop@t=0,count=2",),
        RECOVERED,
    ),
    ChaosScenario(
        "serial_garble",
        "line noise garbles the first two modem responses",
        ("serial:garble@t=0,count=2",),
        RECOVERED,
    ),
    ChaosScenario(
        "registration_cme",
        "AT+CREG? answers '+CME ERROR: no network service' twice",
        ("registration:cme_error@t=0,count=2",),
        RECOVERED,
    ),
    ChaosScenario(
        "registration_denied",
        "the network denies registration (permanent: no retry should happen)",
        ("registration:denied@t=0",),
        DEGRADED,
    ),
    ChaosScenario(
        "registration_slow",
        "the card reports 'searching' for 30 s before finding the network",
        ("registration:searching@t=0,for=30",),
        RECOVERED,
    ),
    ChaosScenario(
        "dial_no_carrier",
        "the first PDP activation is rejected with NO CARRIER",
        ("dial:no_carrier@t=0,count=1",),
        RECOVERED,
    ),
    ChaosScenario(
        "dial_dead",
        "every dial attempt ends in NO CARRIER (no coverage for data)",
        ("dial:no_carrier@t=0",),
        DEGRADED,
    ),
    ChaosScenario(
        "lcp_loss",
        "the first two outbound LCP frames are lost (LCP retransmits)",
        ("ppp:lcp_drop@t=0,count=2",),
        RECOVERED,
    ),
    ChaosScenario(
        "lcp_dead",
        "every outbound LCP frame is lost: negotiation can never complete",
        ("ppp:lcp_drop@t=0",),
        DEGRADED,
    ),
    ChaosScenario(
        "ipcp_stall",
        "the first two outbound IPCP frames are lost (IPCP retransmits)",
        ("ppp:ipcp_stall@t=0,count=2",),
        RECOVERED,
    ),
    ChaosScenario(
        "session_refuse",
        "the operator refuses the first PDP context activation",
        ("session:refuse@t=0,count=1",),
        RECOVERED,
    ),
    ChaosScenario(
        "session_drop",
        "the GGSN kills the session mid-call; nobody re-dials",
        ("session:drop@t=40",),
        DEGRADED,
    ),
    ChaosScenario(
        "session_drop_supervised",
        "the GGSN kills the session mid-call; the supervisor re-dials",
        ("session:drop@t=40",),
        RECOVERED,
        supervise=True,
        hold=90.0,
    ),
    ChaosScenario(
        "rab_preempt",
        "voice traffic preempts the bearer mid-call (rate collapses, call survives)",
        ("session:rab_preempt@t=40",),
        RECOVERED,
    ),
    ChaosScenario(
        "vsys_truncate",
        "the slice's 'start' request line arrives truncated on the FIFO",
        ("vsys:truncate_request@t=0,count=1",),
        DEGRADED,
    ),
    ChaosScenario(
        "vsys_drop_output",
        "one back-end output line is lost on the FIFO (exit code survives)",
        ("vsys:drop_response@t=0,count=1",),
        RECOVERED,
    ),
)


def scenario_names() -> List[str]:
    """The built-in scenario names, campaign order."""
    return [scenario.name for scenario in BUILTIN_SCENARIOS]


class _Collector:
    """A trace sink buffering every event for the digest."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def on_event(self, event: TraceEvent) -> None:
        self.events.append(event)


def trace_digest(events: Sequence[TraceEvent]) -> str:
    """SHA-256 over the trace, wall-clock fields excluded.

    ``span_end`` events carry a ``wall`` field (host CPU seconds);
    everything else in a trace record is a pure function of the seed.
    Shared with the scenario-grammar harness so every runner's digests
    mean the same thing.
    """
    hasher = hashlib.sha256()
    for event in events:
        record = event.to_dict()
        fields = record.get("fields")
        if fields and "wall" in fields:
            record["fields"] = {k: v for k, v in fields.items() if k != "wall"}
        hasher.update(json.dumps(record, sort_keys=True, default=str).encode())
        hasher.update(b"\n")
    return hasher.hexdigest()


def clean_state(testbed: OneLabScenario) -> bool:
    """The invariant every scenario must end on: nothing left behind."""
    backend = testbed.napoli.umts_backend
    stack = testbed.napoli.stack
    return (
        not backend.lock.locked
        and not backend.isolation.active
        and "ppp0" not in stack.interfaces
        and stack.ip.route_list(UMTS_TABLE) == []
    )


def run_scenario(
    scenario: ChaosScenario,
    metrics: Optional[MetricsRegistry] = None,
) -> Dict[str, Any]:
    """Run one scenario to completion and classify the outcome.

    An optional ``metrics`` registry is attached to the simulator for
    the duration of the run — observation only, so the report (and its
    digest) is identical with or without it.  Campaign workers pass a
    fresh registry per job and ship its snapshot back for merging.
    """
    testbed = OneLabScenario(seed=scenario.seed)
    sim = testbed.sim
    bus = TraceBus(sim)
    collector = _Collector()
    bus.attach(collector)
    sim.trace = bus
    if metrics is not None:
        sim.metrics = metrics
    plan = FaultPlan.from_spec(*scenario.specs)
    registry = plan.install(sim, rng=testbed.streams.stream("faults"))
    supervisor: Optional[ConnectionSupervisor] = None
    if scenario.supervise:
        backend = testbed.napoli.umts_backend
        supervisor = ConnectionSupervisor(
            sim,
            testbed.napoli.connection,
            restart=lambda: backend.handler(DEFAULT_SLICE_NAME, ["start"]),
            rng=testbed.streams.stream("supervisor"),
        )
    umts = testbed.umts_command()
    state: Dict[str, Any] = {
        "start": None,
        "status": None,
        "stop": None,
        "finished": False,
    }

    def driver():
        state["start"] = yield umts.start()
        yield scenario.hold
        state["status"] = yield umts.status()
        if testbed.napoli.connection.is_up:
            state["stop"] = yield umts.stop()
        state["finished"] = True

    spawn(sim, driver(), name=f"chaos:{scenario.name}")
    sim.run(until=scenario.deadline)
    if supervisor is not None:
        supervisor.stop()

    hung = not state["finished"]
    clean = not hung and clean_state(testbed)
    start = state["start"]
    status = state["status"]
    stop = state["stop"]
    start_ok = start is not None and start.code == 0
    status_up = (
        status is not None and bool(status.lines) and status.lines[0] == "state: up"
    )
    stop_ok = stop is not None and stop.code == 0
    if hung:
        outcome = HUNG
    elif start_ok and status_up and stop_ok and clean:
        outcome = RECOVERED
    elif clean:
        outcome = DEGRADED
    else:
        outcome = DIRTY
    return {
        "scenario": scenario.name,
        "description": scenario.description,
        "specs": [str(spec) for spec in plan.specs],
        "seed": scenario.seed,
        "supervised": scenario.supervise,
        "expected": scenario.expected,
        "outcome": outcome,
        "ok": outcome == scenario.expected,
        "hung": hung,
        "clean": clean,
        "start_code": None if start is None else start.code,
        "status_lines": None if status is None else list(status.lines),
        "stop_code": None if stop is None else stop.code,
        "fired": dict(registry.fired),
        "faults_injected": sum(registry.fired.values()),
        "heals": 0 if supervisor is None else supervisor.heals,
        "retries": testbed.napoli.connection.retries,
        "events": len(collector.events),
        "sim_time": round(sim.now, 6),
        "digest": trace_digest(collector.events),
    }


def run_campaign(
    names: Optional[Sequence[str]] = None,
    check: bool = False,
) -> Tuple[int, List[Dict[str, Any]]]:
    """Run (a subset of) the campaign.  Returns (exit code, reports).

    Exit 0 when every scenario matched its expectation (and, with
    ``check``, reproduced its digest on a second run); 1 otherwise;
    2 for unknown scenario names.
    """
    selected = list(BUILTIN_SCENARIOS)
    if names:
        known = {scenario.name: scenario for scenario in BUILTIN_SCENARIOS}
        missing = [name for name in names if name not in known]
        if missing:
            raise KeyError(
                f"unknown scenario(s): {', '.join(missing)} "
                f"(known: {', '.join(known)})"
            )
        selected = [known[name] for name in names]
    reports: List[Dict[str, Any]] = []
    failures = 0
    for scenario in selected:
        report = run_scenario(scenario)
        if check:
            rerun = run_scenario(scenario)
            report["deterministic"] = rerun["digest"] == report["digest"]
            if not report["deterministic"]:
                report["ok"] = False
        if not report["ok"]:
            failures += 1
        reports.append(report)
    return (1 if failures else 0), reports
