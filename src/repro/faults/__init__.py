"""repro.faults — deterministic fault injection for the dial-up stack.

The paper's premise is that UMTS links fail in the field: registration
is refused, PPP negotiation stalls, the operator drops the data call.
This package makes those failures *reproducible*:

- :class:`FaultPlan` / :class:`FaultSpec` — declarative per-scenario
  fault lists (``FaultPlan.from_spec("registration:cme_error@t=2.0")``),
  validated against the :data:`~repro.faults.plan.CATALOG` of
  injection points threaded through the modem serial link, comgt
  registration, wvdial/pppd, the vsys FIFO pipes, and the UMTS
  operator model;
- :class:`FaultRegistry` — the live matcher hung off the simulator as
  ``sim.faults`` (same zero-cost ``None`` contract as ``sim.trace``);
- typed classification errors (:class:`TransientError` /
  :class:`PermanentError`) the retry layer in :mod:`repro.core.retry`
  acts on;
- the chaos campaign (:mod:`repro.faults.chaos`, imported lazily — it
  pulls in the full testbed) behind ``python -m repro chaos``.

See ``docs/FAULTS.md`` for the fault taxonomy and plan grammar.
"""

from repro.faults.errors import (
    FaultError,
    PermanentError,
    PipeClosedError,
    TransientError,
    VsysProtocolError,
)
from repro.faults.plan import CATALOG, FaultPlan, FaultSpec, FaultSpecError, Garbled
from repro.faults.registry import FaultRegistry

__all__ = [
    "CATALOG",
    "FaultError",
    "FaultPlan",
    "FaultRegistry",
    "FaultSpec",
    "FaultSpecError",
    "Garbled",
    "PermanentError",
    "PipeClosedError",
    "TransientError",
    "VsysProtocolError",
]
