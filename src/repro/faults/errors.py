"""Typed fault/failure classification errors.

The retry layer (:mod:`repro.core.retry`) decides whether to back off
and try again or to give up based on *what kind* of failure occurred.
These exception types carry that classification explicitly, replacing
the bare assumptions ("reads are complete", "sub-steps cannot fail")
that used to live in ``vsys/daemon.py`` and ``ppp/daemon.py``.

This module is dependency-free on purpose: ``ppp`` and ``vsys`` import
it without pulling in ``repro.core`` (which imports them back).
"""

from __future__ import annotations


class FaultError(Exception):
    """Base class for classified failures."""


class TransientError(FaultError):
    """A failure that is expected to heal: worth retrying with backoff."""


class PermanentError(FaultError):
    """A failure that retrying cannot fix (bad credentials, ACL denial)."""


class VsysProtocolError(TransientError):
    """A vsys FIFO request line was unreadable (truncated/interleaved write)."""


class PipeClosedError(PermanentError):
    """The peer closed the FIFO pair while a request was in flight."""
