"""The live side of a fault plan: matching, counting, triggering.

Injection points consult the registry hung off the simulator::

    faults = self.sim.faults
    if faults is not None and faults.fire("serial", "drop"):
        return  # the response line is lost

``fire`` returns the consumed :class:`~repro.faults.plan.FaultSpec`
(truthy) when a spec matches the point, one of the offered modes, the
current time window, the remaining shot count and the probability draw;
``None`` otherwise.  Triggered specs (GGSN session drop, RAB
preemption) are instead *pushed* to subscribers by activation events
the plan schedules at their ``t=``; a subscriber arriving late (the
data call opens after the activation time) receives pending triggers
immediately, so a mid-call fault is never silently lost.

Every applied fault increments ``fired[point:mode]`` and emits a
``fault.injected`` TraceBus event — the chaos campaign's
delete-one-handler proof asserts on those counters.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.faults.plan import FaultSpec
from repro.sim.engine import Simulator

#: A trigger subscriber: returns True when it applied the fault.
TriggerHandler = Callable[[FaultSpec], bool]


class FaultRegistry:
    """Active fault state for one simulation run."""

    def __init__(
        self, sim: Simulator, specs: List[FaultSpec], rng: Any = None
    ) -> None:
        self.sim = sim
        self.specs = list(specs)
        self._rng = rng
        self._remaining: Dict[int, Optional[int]] = {
            index: spec.count for index, spec in enumerate(self.specs)
        }
        #: ``point:mode`` → times the fault was actually applied.
        self.fired: Dict[str, int] = {}
        self._subscribers: Dict[str, List[TriggerHandler]] = {}
        self._pending: List[FaultSpec] = []

    # -- passive injection points ----------------------------------------

    def fire(self, point: str, *modes: str) -> Optional[FaultSpec]:
        """Consume and return the first spec matching ``point`` (and, if
        given, one of ``modes``) right now; ``None`` when nothing fires."""
        now = self.sim.now
        for index, spec in enumerate(self.specs):
            if spec.triggered or spec.point != point:
                continue
            if modes and spec.mode not in modes:
                continue
            if not spec.active_at(now):
                continue
            remaining = self._remaining[index]
            if remaining is not None and remaining <= 0:
                continue
            if spec.probability is not None:
                if self._rng is None or self._rng.random() >= spec.probability:
                    continue
            if remaining is not None:
                self._remaining[index] = remaining - 1
            self._record(spec)
            return spec
        return None

    # -- triggered injection points ---------------------------------------

    def subscribe(self, point: str, handler: TriggerHandler) -> None:
        """Register a handler for triggered specs at ``point``.

        Idempotent per handler; pending (already activated, unconsumed)
        triggers are delivered to the new subscriber at once.
        """
        handlers = self._subscribers.setdefault(point, [])
        if handler in handlers:
            return
        handlers.append(handler)
        pending = [spec for spec in self._pending if spec.point == point]
        for spec in pending:
            self.sim.post(0.0, self._deliver, spec)

    def _activate(self, spec: FaultSpec) -> None:
        """Activation event for a triggered spec (scheduled at install)."""
        self._deliver(spec)

    def _deliver(self, spec: FaultSpec) -> None:
        if spec not in self._pending:
            self._pending.append(spec)
        for handler in list(self._subscribers.get(spec.point, [])):
            if spec not in self._pending:
                return  # a concurrent delivery already consumed it
            if handler(spec):
                self._pending.remove(spec)
                self._record(spec)
                return

    # -- bookkeeping -------------------------------------------------------

    def _record(self, spec: FaultSpec) -> None:
        self.fired[spec.key] = self.fired.get(spec.key, 0) + 1
        trace = self.sim.trace
        if trace is not None:
            trace.emit(
                "fault.injected",
                point=spec.point,
                mode=spec.mode,
                spec=str(spec),
                nth=self.fired[spec.key],
            )

    def fired_total(self, point: str) -> int:
        """Total applied faults at ``point`` across all modes."""
        prefix = f"{point}:"
        return sum(n for key, n in self.fired.items() if key.startswith(prefix))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FaultRegistry specs={len(self.specs)} fired={self.fired}>"
