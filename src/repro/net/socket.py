"""UDP sockets.

A :class:`UDPSocket` is created *by a context* — either the root
context (xid 0) or a slice — and every packet it emits carries that
context id, which is precisely what VNET+ lets iptables match on.

The API mirrors the bits of the BSD socket API that the experiments
use: ``bind``, ``sendto``, a receive callback, and
``SO_BINDTODEVICE`` (the paper notes a slice may "explicitly bind to
the UMTS interface" as the alternative to registering destinations).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.net.addressing import (
    PROTO_UDP,
    UNSPECIFIED,
    AddressLike,
    IPv4Address,
    ip,
)
from repro.net.packet import ROOT_XID, Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.stack import IPStack

#: Signature of the receive callback:
#: ``callback(payload, src_address, src_port, packet)``.
ReceiveCallback = Callable[[Any, IPv4Address, int, Packet], None]


class UDPSocket:
    """A datagram socket bound to one node's stack."""

    def __init__(self, stack: "IPStack", xid: int = ROOT_XID):
        self.stack = stack
        self.xid = xid
        self.address: IPv4Address = UNSPECIFIED
        self.port: int = 0
        self.bound_device: Optional[str] = None
        self.tos = 0
        self.on_receive: Optional[ReceiveCallback] = None
        self.closed = False
        self.tx_packets = 0
        self.rx_packets = 0

    def bind(self, address: AddressLike = UNSPECIFIED, port: int = 0) -> int:
        """Bind to a local address/port; port 0 picks an ephemeral one.

        Returns the bound port.  Raises
        :class:`~repro.net.errors.AddressInUseError` on conflicts.
        """
        self._ensure_open()
        self.stack.register_socket(self, ip(address), port)
        return self.port

    def bind_to_device(self, iface_name: str) -> None:
        """SO_BINDTODEVICE: restrict routing and delivery to one interface."""
        self._ensure_open()
        self.bound_device = iface_name

    def sendto(
        self,
        payload: Any,
        size: int,
        dst: AddressLike,
        dport: int,
        tos: Optional[int] = None,
    ) -> Packet:
        """Send ``size`` bytes of ``payload`` to ``dst:dport``.

        The packet is stamped with this socket's context id (xid) and
        handed to the stack's local-output path.  Routing errors
        propagate to the caller, as a failing ``sendto(2)`` would.
        """
        self._ensure_open()
        if self.port == 0:
            self.bind()
        packet = Packet(
            dst=dst,
            proto=PROTO_UDP,
            src=self.address,
            size=size,
            sport=self.port,
            dport=dport,
            payload=payload,
            tos=self.tos if tos is None else tos,
            xid=self.xid,
        )
        if self.bound_device is not None:
            packet.meta["bound_dev"] = self.bound_device
        self.stack.send(packet)
        self.tx_packets += 1
        return packet

    def deliver(self, packet: Packet) -> None:
        """Called by the stack when a datagram matches this socket."""
        if self.closed:
            return
        self.rx_packets += 1
        if self.on_receive is not None:
            self.on_receive(packet.payload, packet.src, packet.sport, packet)

    def close(self) -> None:
        """Release the binding.  Idempotent."""
        if self.closed:
            return
        self.closed = True
        self.stack.unregister_socket(self)

    def _ensure_open(self) -> None:
        if self.closed:
            raise OSError("socket is closed")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<UDPSocket {self.stack.name} {self.address}:{self.port} "
            f"xid={self.xid} dev={self.bound_device or '*'}>"
        )
