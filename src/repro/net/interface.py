"""Network interfaces.

Three kinds are modelled, matching the node hardware in the paper:

- :class:`LoopbackInterface` — ``lo``;
- :class:`EthernetInterface` — ``eth0``, the wired control/experiment
  interface every PlanetLab node has;
- :class:`PPPInterface` — ``ppp0``, the point-to-point interface pppd
  creates over the 3G modem once the UMTS connection is up.

An interface belongs to one :class:`~repro.net.stack.IPStack` and is
attached to at most one outgoing :class:`~repro.net.link.Channel`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.net.addressing import AddressLike, IPv4Address, IPv4Network, ip
from repro.net.errors import InterfaceDownError
from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.link import Channel
    from repro.net.stack import IPStack


class Interface:
    """Base class for all interface kinds."""

    #: whether the interface is point-to-point (PPP) or broadcast-style.
    point_to_point = False

    def __init__(self, name: str, mtu: int = 1500):
        self.name = name
        self.mtu = mtu
        self.stack: Optional["IPStack"] = None
        self.address: Optional[IPv4Address] = None
        self.prefix_len: Optional[int] = None
        self.peer_address: Optional[IPv4Address] = None
        self.up = False
        self._channel: Optional["Channel"] = None
        self.tx_packets = 0
        self.tx_bytes = 0
        self.rx_packets = 0
        self.rx_bytes = 0
        self.tx_dropped = 0
        self.rx_dropped = 0
        #: sniffer taps: callbacks invoked as ``tap(direction, packet)``
        #: with direction "tx"/"rx" (see :mod:`repro.net.sniffer`).
        self.taps = []

    def configure(self, address: AddressLike, prefix_len: int) -> None:
        """Assign an address and prefix length (e.g. 143.225.229.100/24)."""
        if not 0 <= prefix_len <= 32:
            raise ValueError(f"invalid prefix length {prefix_len!r}")
        self.address = ip(address)
        self.prefix_len = prefix_len

    def connected_network(self) -> Optional[IPv4Network]:
        """The directly connected prefix, or ``None`` if unconfigured."""
        if self.address is None or self.prefix_len is None:
            return None
        return IPv4Network(f"{self.address}/{self.prefix_len}", strict=False)

    def attach(self, channel: "Channel") -> None:
        """Bind the outgoing channel this interface transmits onto."""
        self._channel = channel

    @property
    def channel(self) -> Optional["Channel"]:
        """The attached outgoing channel, if any."""
        return self._channel

    def bring_up(self) -> None:
        """Administratively enable the interface."""
        self.up = True

    def bring_down(self) -> None:
        """Administratively disable the interface."""
        self.up = False

    def transmit(self, packet: Packet) -> None:
        """Send a packet out of this interface.

        Raises :class:`InterfaceDownError` when the interface is down or
        unattached; oversized packets are dropped and counted (the
        simulation does not implement IP fragmentation — nothing in the
        reproduced experiments fragments).
        """
        if not self.up or self._channel is None:
            raise InterfaceDownError(f"{self.name} is down or not attached")
        if packet.length > self.mtu + 20:
            self.tx_dropped += 1
            return
        accepted = self._channel.send(packet)
        if accepted:
            self.tx_packets += 1
            self.tx_bytes += packet.length
            for tap in self.taps:
                tap("tx", packet)
        else:
            self.tx_dropped += 1

    def deliver(self, packet: Packet) -> None:
        """Receive a packet from the wire and hand it to the stack."""
        if not self.up or self.stack is None:
            self.rx_dropped += 1
            return
        self.rx_packets += 1
        self.rx_bytes += packet.length
        for tap in self.taps:
            tap("rx", packet)
        self.stack.receive(packet, self)

    def __repr__(self) -> str:
        addr = f"{self.address}/{self.prefix_len}" if self.address else "unconfigured"
        state = "up" if self.up else "down"
        return f"<{type(self).__name__} {self.name} {addr} {state}>"


class LoopbackInterface(Interface):
    """The loopback interface; always up, never attached to a link."""

    def __init__(self, name: str = "lo"):
        super().__init__(name, mtu=65536)
        self.configure("127.0.0.1", 8)
        self.up = True

    def transmit(self, packet: Packet) -> None:
        """Loop the packet straight back into the stack."""
        self.tx_packets += 1
        self.tx_bytes += packet.length
        for tap in self.taps:
            tap("tx", packet)
        self.deliver(packet)


class EthernetInterface(Interface):
    """A wired LAN interface (``eth0``)."""


class PPPInterface(Interface):
    """A point-to-point interface created by pppd (``ppp0``).

    PPP interfaces carry a local and a peer address negotiated by IPCP;
    there is no connected prefix, only a host route to the peer.
    """

    point_to_point = True

    def __init__(self, name: str = "ppp0", mtu: int = 1500):
        super().__init__(name, mtu=mtu)

    def configure_p2p(self, local: AddressLike, peer: AddressLike) -> None:
        """Set the negotiated local/peer address pair."""
        self.address = ip(local)
        self.prefix_len = 32
        self.peer_address = ip(peer)

    def connected_network(self) -> Optional[IPv4Network]:
        """PPP links expose the peer as a /32 host route."""
        if self.peer_address is None:
            return None
        return IPv4Network(f"{self.peer_address}/32")
