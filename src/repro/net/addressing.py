"""IPv4 address helpers.

Thin wrappers over :mod:`ipaddress` so the rest of the code base can
accept either strings or already-parsed objects, plus the well-known
protocol numbers used throughout the stack.
"""

from __future__ import annotations

import ipaddress
from typing import Union

IPv4Address = ipaddress.IPv4Address
IPv4Network = ipaddress.IPv4Network

AddressLike = Union[str, IPv4Address]
NetworkLike = Union[str, IPv4Network]

#: IP protocol numbers (a subset of /etc/protocols).
PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

#: The unspecified address, used for not-yet-source-selected packets.
UNSPECIFIED = IPv4Address("0.0.0.0")

#: Default prefix matching everything (the `default` route target).
DEFAULT_NETWORK = IPv4Network("0.0.0.0/0")


def ip(value: AddressLike) -> IPv4Address:
    """Parse ``value`` into an :class:`IPv4Address` (idempotent)."""
    if isinstance(value, IPv4Address):
        return value
    return IPv4Address(value)


def network(value: NetworkLike) -> IPv4Network:
    """Parse ``value`` into an :class:`IPv4Network`.

    Accepts the literal ``"default"`` (as ``ip route`` does), a bare
    address (treated as a /32 host route), or CIDR notation.
    """
    if isinstance(value, IPv4Network):
        return value
    if value == "default":
        return DEFAULT_NETWORK
    if "/" not in value:
        return IPv4Network(f"{value}/32")
    return IPv4Network(value, strict=False)


def proto_name(proto: int) -> str:
    """Human-readable name for an IP protocol number."""
    return {PROTO_ICMP: "icmp", PROTO_TCP: "tcp", PROTO_UDP: "udp"}.get(
        proto, str(proto)
    )
