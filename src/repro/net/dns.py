"""A small DNS: server, resolver, A records.

Dial-up networking needs name resolution: IPCP pushes the operator's
DNS server to the mobile (the ``dns1`` option, see
:mod:`repro.ppp.ipcp`), and the GGSN answers queries for it.  This
module provides both halves — a zone-backed :class:`DnsServer` and a
retrying :class:`DnsResolver` — so experiments can address nodes by
name (``onelab03.inria.fr``) instead of hard-coded literals, over
either path.
"""

from __future__ import annotations

import itertools
from typing import Dict, NamedTuple, Optional

from repro.core.retry import RetryPolicy
from repro.net.addressing import AddressLike, IPv4Address, ip
from repro.net.errors import NetworkError
from repro.net.socket import UDPSocket
from repro.sim.engine import Simulator
from repro.sim.process import Process, Signal, spawn

DNS_PORT = 53

_query_ids = itertools.count(1)


class DnsQuery(NamedTuple):
    """A question: name + query id."""

    qid: int
    name: str


class DnsAnswer(NamedTuple):
    """A response: the queried name, its address (None = NXDOMAIN)."""

    qid: int
    name: str
    address: Optional[IPv4Address]


class DnsServer:
    """An authoritative server over a name→address zone."""

    def __init__(self, socket: UDPSocket, zone: Optional[Dict[str, AddressLike]] = None,
                 port: int = DNS_PORT):
        self.socket = socket
        if socket.port == 0:
            socket.bind(port=port)
        socket.on_receive = self._on_query
        self._zone: Dict[str, IPv4Address] = {}
        for name, address in (zone or {}).items():
            self.add_record(name, address)
        self.queries = 0
        self.nxdomains = 0

    def add_record(self, name: str, address: AddressLike) -> None:
        """Install/replace one A record."""
        self._zone[name.lower().rstrip(".")] = ip(address)

    def remove_record(self, name: str) -> None:
        """Delete an A record (missing names are ignored)."""
        self._zone.pop(name.lower().rstrip("."), None)

    def lookup(self, name: str) -> Optional[IPv4Address]:
        """Zone lookup (no network involved)."""
        return self._zone.get(name.lower().rstrip("."))

    def _on_query(self, payload, src, sport, packet) -> None:
        if not isinstance(payload, DnsQuery):
            return
        self.queries += 1
        address = self.lookup(payload.name)
        if address is None:
            self.nxdomains += 1
        answer = DnsAnswer(payload.qid, payload.name, address)
        try:
            self.socket.sendto(answer, 64, src, sport)
        except NetworkError:
            pass


class ResolutionError(Exception):
    """The resolver gave up (timeouts) or the name does not exist."""


class DnsResolver:
    """A stub resolver with timeout and retry.

    ``resolve(name)`` returns a simulation process whose value is the
    :class:`IPv4Address`; inside another process, write
    ``address = yield resolver.resolve(name)``.  NXDOMAIN or exhausted
    retries surface as a :class:`ResolutionError` carried in the
    process value (``resolve_blocking`` raises it directly).
    """

    def __init__(
        self,
        sim: Simulator,
        socket: UDPSocket,
        server: AddressLike,
        timeout: float = 2.0,
        retries: int = 2,
    ):
        self.sim = sim
        self.socket = socket
        self.server = ip(server)
        self.timeout = timeout
        self.retries = retries
        self._waiting: Dict[int, Signal] = {}
        socket.on_receive = self._on_answer
        if socket.port == 0:
            socket.bind()
        self.sent_queries = 0
        self.timeouts = 0

    def _on_answer(self, payload, src, sport, packet) -> None:
        if not isinstance(payload, DnsAnswer):
            return
        signal = self._waiting.pop(payload.qid, None)
        if signal is not None:
            signal.fire(payload)

    def resolve(self, name: str) -> Process:
        """Start one resolution; returns the process."""
        # The classic resolver schedule: constant spacing, no backoff
        # (the per-query timeout already paces the attempts).
        policy = RetryPolicy(
            max_attempts=self.retries + 1,
            base_delay=self.timeout,
            multiplier=1.0,
            max_delay=self.timeout,
        )

        def body():
            last_error = "no attempts made"
            for attempt in policy.attempts():
                qid = next(_query_ids)
                answered = Signal(self.sim, f"dns-{qid}")
                self._waiting[qid] = answered
                try:
                    self.socket.sendto(DnsQuery(qid, name), 48, self.server, DNS_PORT)
                except NetworkError as exc:
                    self._waiting.pop(qid, None)
                    last_error = f"send failed: {exc}"
                    yield policy.delay(attempt)
                    continue
                self.sent_queries += 1
                timer = self.sim.schedule(self.timeout, answered.fire, None)
                answer = yield answered
                timer.cancel()
                if answer is None:
                    self._waiting.pop(qid, None)
                    self.timeouts += 1
                    last_error = "query timed out"
                    continue
                if answer.address is None:
                    return ResolutionError(f"NXDOMAIN: {name}")
                return answer.address
            return ResolutionError(f"resolution of {name!r} failed: {last_error}")

        return spawn(self.sim, body(), name=f"resolve:{name}")

    def resolve_blocking(self, name: str) -> IPv4Address:
        """Run the simulator until the resolution completes (tests/scripts)."""
        process = self.resolve(name)
        while process.alive:
            if not self.sim.step():
                raise ResolutionError(f"resolver deadlocked resolving {name!r}")
        if isinstance(process.value, ResolutionError):
            raise process.value
        return process.value
