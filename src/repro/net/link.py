"""Links and transmission channels.

A :class:`Channel` is one direction of a link: a DropTail byte queue in
front of a serializing transmitter, followed by a propagation delay
with optional jitter and random loss.  A :class:`Link` wires two
interfaces together with a channel each way.

The channel's ``rate_bps`` is read at the start of every packet
transmission, so a rate change (the UMTS RAB upgrade) takes effect on
the next packet boundary — exactly how a real dedicated channel
reconfiguration behaves at this level of abstraction.
"""

from __future__ import annotations

import random as _random
from collections import deque
from typing import Callable, Deque, Optional

from repro.net.interface import Interface
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.rng import Distribution


class Channel:
    """One direction of a link.

    Parameters
    ----------
    sim:
        the simulator.
    deliver:
        callback receiving each packet that survives the channel.
    rate_bps:
        serialization rate in bits per second; mutable at runtime.
    delay:
        fixed one-way propagation/processing delay in seconds.
    queue_bytes:
        DropTail queue capacity in bytes (packets whose arrival would
        exceed it are dropped).
    loss_rate:
        independent per-packet loss probability applied after
        serialization (models residual link-layer loss).
    jitter:
        optional distribution of extra per-packet delay, sampled per
        packet; deliveries are serialized so the channel never reorders.
    rng:
        random source for loss and jitter (required if either is used).
    length_of:
        how to size the queued items in bytes; defaults to the IP
        packet's ``length``.  The UMTS radio bearer reuses this class
        for PPP frames by passing ``lambda f: f.wire_length``.
    """

    def __init__(
        self,
        sim: Simulator,
        deliver: Callable[[Packet], None],
        rate_bps: float,
        delay: float,
        queue_bytes: int = 256000,
        loss_rate: float = 0.0,
        jitter: Optional[Distribution] = None,
        rng: Optional[_random.Random] = None,
        name: str = "",
        length_of: Optional[Callable[[object], int]] = None,
    ):
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps!r}")
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay!r}")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {loss_rate!r}")
        if (loss_rate > 0.0 or jitter is not None) and rng is None:
            raise ValueError("loss or jitter requires an rng")
        self._sim = sim
        self._deliver = deliver
        self.rate_bps = float(rate_bps)
        self.delay = float(delay)
        self.queue_bytes = queue_bytes
        self.loss_rate = loss_rate
        self.jitter = jitter
        self._rng = rng
        self.name = name
        self._length_of = length_of if length_of is not None else (lambda item: item.length)
        self._queue: Deque[Packet] = deque()
        self._queued_bytes = 0
        self._busy = False
        self._last_delivery_time = 0.0
        self.tx_packets = 0
        self.tx_bytes = 0
        self.dropped_queue = 0
        self.dropped_loss = 0

    @property
    def backlog_bytes(self) -> int:
        """Bytes currently waiting in the queue (not counting in-flight)."""
        return self._queued_bytes

    @property
    def backlog_packets(self) -> int:
        """Packets currently waiting in the queue."""
        return len(self._queue)

    def send(self, packet: Packet) -> bool:
        """Enqueue a packet; returns ``False`` if the queue rejected it."""
        size = self._length_of(packet)
        if self._queued_bytes + size > self.queue_bytes and self._busy:
            self.dropped_queue += 1
            return False
        if self._busy:
            self._queue.append(packet)
            self._queued_bytes += size
        else:
            self._begin_transmission(packet)
        return True

    def _begin_transmission(self, packet: Packet) -> None:
        self._busy = True
        serialization = self._length_of(packet) * 8.0 / self.rate_bps
        self._sim.post(serialization, self._transmission_done, packet)

    def _transmission_done(self, packet: Packet) -> None:
        self.tx_packets += 1
        self.tx_bytes += self._length_of(packet)
        self._schedule_delivery(packet)
        if self._queue:
            next_packet = self._queue.popleft()
            self._queued_bytes -= self._length_of(next_packet)
            self._begin_transmission(next_packet)
        else:
            self._busy = False

    def _schedule_delivery(self, packet: Packet) -> None:
        if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            self.dropped_loss += 1
            return
        delay = self.delay
        if self.jitter is not None:
            delay += max(0.0, self.jitter.sample(self._rng))
        arrival = self._sim.now + delay
        # FIFO channels never reorder: clamp to the last delivery time.
        if arrival < self._last_delivery_time:
            arrival = self._last_delivery_time
        self._last_delivery_time = arrival
        self._sim.post_at(arrival, self._deliver, packet)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Channel {self.name!r} rate={self.rate_bps:.0f}bps "
            f"delay={self.delay * 1000:.1f}ms backlog={self._queued_bytes}B>"
        )


class Link:
    """A full-duplex link between two interfaces.

    Creates one :class:`Channel` per direction with (by default)
    symmetric parameters, attaches them, and brings both interfaces up.
    Use the asymmetric keyword pairs when the two directions differ.
    """

    def __init__(
        self,
        sim: Simulator,
        a: Interface,
        b: Interface,
        rate_bps: float = 100e6,
        delay: float = 0.0001,
        queue_bytes: int = 256000,
        loss_rate: float = 0.0,
        jitter: Optional[Distribution] = None,
        rng: Optional[_random.Random] = None,
        rate_bps_ab: Optional[float] = None,
        rate_bps_ba: Optional[float] = None,
        name: str = "",
    ):
        self.name = name or f"{a.name}<->{b.name}"
        self.a = a
        self.b = b
        self.ab = Channel(
            sim,
            b.deliver,
            rate_bps_ab if rate_bps_ab is not None else rate_bps,
            delay,
            queue_bytes=queue_bytes,
            loss_rate=loss_rate,
            jitter=jitter,
            rng=rng,
            name=f"{self.name}:ab",
        )
        self.ba = Channel(
            sim,
            a.deliver,
            rate_bps_ba if rate_bps_ba is not None else rate_bps,
            delay,
            queue_bytes=queue_bytes,
            loss_rate=loss_rate,
            jitter=jitter,
            rng=rng,
            name=f"{self.name}:ba",
        )
        a.attach(self.ab)
        b.attach(self.ba)
        a.bring_up()
        b.bring_up()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Link {self.name}>"
