"""Network substrate: packets, interfaces, links, sockets, IP stacks.

This package is the simulated equivalent of the Linux networking the
PlanetLab node runs on.  A node is an :class:`IPStack` with interfaces
(:class:`EthernetInterface`, :class:`PPPInterface`), connected to other
stacks by :class:`Link` objects; applications talk through
:class:`UDPSocket` and :class:`Pinger`.
"""

from repro.net.addressing import (
    DEFAULT_NETWORK,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    UNSPECIFIED,
    IPv4Address,
    IPv4Network,
    ip,
    network,
)
from repro.net.errors import (
    AddressInUseError,
    InterfaceDownError,
    NetworkError,
    NoRouteError,
    PermissionDeniedError,
)
from repro.net.dns import DnsAnswer, DnsQuery, DnsResolver, DnsServer, ResolutionError
from repro.net.icmp import IcmpEcho, Pinger
from repro.net.interface import (
    EthernetInterface,
    Interface,
    LoopbackInterface,
    PPPInterface,
)
from repro.net.link import Channel, Link
from repro.net.packet import ROOT_XID, Packet
from repro.net.sniffer import CaptureFilter, CapturedPacket, Sniffer
from repro.net.socket import UDPSocket
from repro.net.stack import IPStack

__all__ = [
    "AddressInUseError",
    "CaptureFilter",
    "CapturedPacket",
    "Channel",
    "DnsAnswer",
    "DnsQuery",
    "DnsResolver",
    "DnsServer",
    "ResolutionError",
    "Sniffer",
    "DEFAULT_NETWORK",
    "EthernetInterface",
    "IPStack",
    "IPv4Address",
    "IPv4Network",
    "IcmpEcho",
    "Interface",
    "InterfaceDownError",
    "Link",
    "LoopbackInterface",
    "NetworkError",
    "NoRouteError",
    "PPPInterface",
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
    "Packet",
    "PermissionDeniedError",
    "Pinger",
    "ROOT_XID",
    "UDPSocket",
    "UNSPECIFIED",
    "ip",
    "network",
]
