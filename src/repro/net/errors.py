"""Exceptions raised by the network substrate."""


class NetworkError(Exception):
    """Base class for every error raised by :mod:`repro.net`."""


class NoRouteError(NetworkError):
    """No routing-table entry matched the destination (EHOSTUNREACH)."""


class AddressInUseError(NetworkError):
    """A socket bind collided with an existing binding (EADDRINUSE)."""


class InterfaceDownError(NetworkError):
    """A send was attempted through an interface that is down (ENETDOWN)."""


class PermissionDeniedError(NetworkError):
    """The calling context lacks the privilege for the operation (EPERM)."""
