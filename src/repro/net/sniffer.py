"""Packet capture — the simulation's tcpdump.

A :class:`Sniffer` attaches to interfaces and records every packet
they transmit or receive, optionally through a small capture filter
(host/port/protocol/xid).  The paper's authors debugged their routing
and marking rules with exactly this kind of observation; in the
reproduction it doubles as a test instrument: captures prove which
interface carried a packet and what mark/xid it had on the wire.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from repro.net.addressing import AddressLike, ip
from repro.net.interface import Interface
from repro.net.packet import Packet
from repro.sim.engine import Simulator


class CapturedPacket(NamedTuple):
    """One capture record."""

    time: float
    iface: str
    direction: str  # "tx" or "rx"
    packet: Packet

    def line(self) -> str:
        """A tcpdump-ish one-line rendering."""
        p = self.packet
        return (
            f"{self.time:10.6f} {self.iface} {self.direction} "
            f"{p.src}:{p.sport} > {p.dst}:{p.dport} "
            f"proto {p.proto} len {p.length} mark {p.mark:#x} xid {p.xid}"
        )


class CaptureFilter:
    """A conjunctive capture filter (every given criterion must hold)."""

    def __init__(
        self,
        host: Optional[AddressLike] = None,
        src: Optional[AddressLike] = None,
        dst: Optional[AddressLike] = None,
        port: Optional[int] = None,
        proto: Optional[int] = None,
        xid: Optional[int] = None,
    ):
        self.host = ip(host) if host is not None else None
        self.src = ip(src) if src is not None else None
        self.dst = ip(dst) if dst is not None else None
        self.port = port
        self.proto = proto
        self.xid = xid

    def matches(self, packet: Packet) -> bool:
        """Whether the packet passes the filter."""
        if self.host is not None and self.host not in (packet.src, packet.dst):
            return False
        if self.src is not None and packet.src != self.src:
            return False
        if self.dst is not None and packet.dst != self.dst:
            return False
        if self.port is not None and self.port not in (packet.sport, packet.dport):
            return False
        if self.proto is not None and packet.proto != self.proto:
            return False
        if self.xid is not None and packet.xid != self.xid:
            return False
        return True


class Sniffer:
    """Captures traffic on any number of interfaces."""

    def __init__(self, sim: Simulator, capture_filter: Optional[CaptureFilter] = None):
        self.sim = sim
        self.filter = capture_filter
        self.records: List[CapturedPacket] = []
        self._attachments: List[tuple] = []

    def attach(self, iface: Interface, directions: str = "both") -> None:
        """Start capturing on ``iface`` ("tx", "rx" or "both")."""
        if directions not in ("tx", "rx", "both"):
            raise ValueError(f"bad directions {directions!r}")

        def tap(direction: str, packet: Packet, _iface=iface, _want=directions):
            if _want != "both" and direction != _want:
                return
            if self.filter is not None and not self.filter.matches(packet):
                return
            self.records.append(
                CapturedPacket(self.sim.now, _iface.name, direction, packet)
            )

        iface.taps.append(tap)
        self._attachments.append((iface, tap))

    def detach_all(self) -> None:
        """Stop capturing everywhere."""
        for iface, tap in self._attachments:
            if tap in iface.taps:
                iface.taps.remove(tap)
        self._attachments.clear()

    def __len__(self) -> int:
        return len(self.records)

    def packets(self, iface: Optional[str] = None, direction: Optional[str] = None):
        """The captured packets, optionally narrowed."""
        return [
            record.packet
            for record in self.records
            if (iface is None or record.iface == iface)
            and (direction is None or record.direction == direction)
        ]

    def dump(self) -> List[str]:
        """All records as tcpdump-ish lines."""
        return [record.line() for record in self.records]

    def save(self, path) -> None:
        """Write the capture to a text file, one record per line."""
        import pathlib

        pathlib.Path(path).write_text("\n".join(self.dump()) + "\n")
