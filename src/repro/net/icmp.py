"""Minimal ICMP echo support.

Enough to run ``ping`` through the simulated network: stacks answer
echo requests automatically, and :class:`Pinger` provides the client
side with RTT measurement.  The D-ITG experiments measure RTT at the
application layer instead, but ping is the first thing anyone runs
after ``umts start``, so the quickstart example exercises this.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from repro.net.addressing import PROTO_ICMP, AddressLike
from repro.net.packet import ROOT_XID, Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.stack import IPStack

ECHO_REQUEST = "echo-request"
ECHO_REPLY = "echo-reply"


class IcmpEcho:
    """Payload of an ICMP echo request/reply."""

    __slots__ = ("kind", "ident", "seq", "request_sent_at")

    def __init__(self, kind: str, ident: int, seq: int, request_sent_at: float):
        self.kind = kind
        self.ident = ident
        self.seq = seq
        #: send timestamp of the original request, echoed back in the
        #: reply so the pinger computes RTT without extra state.
        self.request_sent_at = request_sent_at

    def __repr__(self) -> str:
        return f"<IcmpEcho {self.kind} id={self.ident} seq={self.seq}>"


def make_echo_reply(request: Packet, local_address) -> Packet:
    """Build the reply a stack sends for a received echo request."""
    echo: IcmpEcho = request.payload
    reply = Packet(
        dst=request.src,
        proto=PROTO_ICMP,
        src=local_address,
        size=request.size,
        payload=IcmpEcho(ECHO_REPLY, echo.ident, echo.seq, echo.request_sent_at),
        xid=ROOT_XID,
    )
    return reply


class Pinger:
    """An ICMP echo client bound to one stack.

    ``send(dst)`` emits one request; replies land in ``results`` as
    ``(seq, rtt_seconds)`` and optionally invoke a callback.
    """

    _next_ident = 1

    def __init__(
        self,
        stack: "IPStack",
        xid: int = ROOT_XID,
        on_reply: Optional[Callable[[int, float], None]] = None,
    ):
        self.stack = stack
        self.xid = xid
        self.on_reply = on_reply
        self.ident = Pinger._next_ident
        Pinger._next_ident += 1
        self.seq = 0
        self.sent = 0
        self.results: List[Tuple[int, float]] = []
        stack.register_echo_listener(self.ident, self._handle_reply)

    def send(self, dst: AddressLike, size: int = 56) -> int:
        """Emit one echo request; returns its sequence number."""
        self.seq += 1
        packet = Packet(
            dst=dst,
            proto=PROTO_ICMP,
            size=size,
            payload=IcmpEcho(ECHO_REQUEST, self.ident, self.seq, self.stack.sim.now),
            xid=self.xid,
        )
        self.stack.send(packet)
        self.sent += 1
        return self.seq

    def _handle_reply(self, packet: Packet) -> None:
        echo: IcmpEcho = packet.payload
        rtt = self.stack.sim.now - echo.request_sent_at
        self.results.append((echo.seq, rtt))
        if self.on_reply is not None:
            self.on_reply(echo.seq, rtt)

    def close(self) -> None:
        """Stop listening for replies."""
        self.stack.unregister_echo_listener(self.ident)
