"""The per-node IP stack.

One :class:`IPStack` models a host's (or router's) layer-3 machinery:
interfaces, the routing policy database, netfilter hooks, UDP socket
demultiplexing and ICMP echo.  The hook/routing order follows Linux for
the paths the paper exercises:

Local output
    ``mangle OUTPUT`` (may set the fwmark) → policy routing (uses the
    mark — this is why the MARK-then-``ip rule fwmark`` trick works) →
    source selection → ``filter OUTPUT`` (sees the output interface —
    where the paper's drop rule sits) → ``mangle POSTROUTING`` →
    transmit.

Input
    ``mangle PREROUTING`` → is it for us? → ``filter INPUT`` → deliver;
    otherwise, with forwarding enabled: TTL decrement →
    ``filter FORWARD`` → routing → ``mangle POSTROUTING`` → transmit.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.net.addressing import (
    PROTO_ICMP,
    PROTO_UDP,
    UNSPECIFIED,
    AddressLike,
    IPv4Address,
    ip,
)
from repro.net.errors import (
    AddressInUseError,
    InterfaceDownError,
    NoRouteError,
)
from repro.net.icmp import ECHO_REPLY, ECHO_REQUEST, IcmpEcho, make_echo_reply
from repro.net.interface import Interface, LoopbackInterface
from repro.net.packet import Packet
from repro.net.socket import UDPSocket
from repro.netfilter.chains import (
    HOOK_FORWARD,
    HOOK_INPUT,
    HOOK_OUTPUT,
    HOOK_POSTROUTING,
    HOOK_PREROUTING,
    Netfilter,
)
from repro.netfilter.iptables import Iptables
from repro.routing.iproute2 import IpRoute2
from repro.routing.rpdb import RoutingPolicyDatabase
from repro.routing.table import Route
from repro.sim.engine import Simulator

EPHEMERAL_PORT_START = 32768
EPHEMERAL_PORT_END = 61000


class IPStack:
    """A host/router network stack."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.interfaces: Dict[str, Interface] = {}
        self.rpdb = RoutingPolicyDatabase()
        self.netfilter = Netfilter()
        #: command facades mirroring the tools the back-end runs.
        self.ip = IpRoute2(self.rpdb)
        self.iptables = Iptables(self.netfilter)
        self.forwarding = False
        self._udp_ports: Dict[int, List[UDPSocket]] = {}
        self._bwlimiters: Dict[str, object] = {}
        self._next_ephemeral = EPHEMERAL_PORT_START
        self._echo_listeners: Dict[int, Callable[[Packet], None]] = {}
        # counters
        self.sent_packets = 0
        self.delivered_packets = 0
        self.forwarded_packets = 0
        self.dropped_no_route = 0
        self.dropped_filter = 0
        self.dropped_ttl = 0
        self.dropped_no_socket = 0
        self.dropped_iface_down = 0
        self.add_interface(LoopbackInterface())

    # -- interfaces ----------------------------------------------------

    def add_interface(self, iface: Interface) -> Interface:
        """Register an interface under its name."""
        if iface.name in self.interfaces:
            raise ValueError(f"interface {iface.name!r} already exists on {self.name}")
        iface.stack = self
        self.interfaces[iface.name] = iface
        return iface

    def remove_interface(self, name: str) -> None:
        """Unregister an interface and purge its routes from all tables.

        This is what happens when pppd tears down ``ppp0``: the kernel
        removes the device routes automatically.
        """
        iface = self.interfaces.pop(name, None)
        if iface is None:
            raise KeyError(f"no interface {name!r} on {self.name}")
        iface.bring_down()
        iface.stack = None
        self.rpdb.purge_dev(name)

    def iface(self, name: str) -> Interface:
        """Look up an interface by name."""
        return self.interfaces[name]

    def configure_interface(
        self,
        iface: Interface,
        address: AddressLike,
        prefix_len: int,
        add_connected_route: bool = True,
    ) -> None:
        """Assign an address and (by default) install the connected route."""
        iface.configure(address, prefix_len)
        if add_connected_route and prefix_len < 32:
            net = iface.connected_network()
            self.rpdb.main.add(Route(net, iface.name, src=iface.address), replace=True)

    def local_addresses(self) -> List[IPv4Address]:
        """Every address assigned to this stack's interfaces."""
        return [i.address for i in self.interfaces.values() if i.address is not None]

    def is_local_address(self, addr: AddressLike) -> bool:
        """Whether ``addr`` belongs to this node (incl. 127/8)."""
        address = ip(addr)
        if address.is_loopback:
            return True
        return any(i.address == address for i in self.interfaces.values())

    # -- sockets --------------------------------------------------------

    def socket(self, xid: int = 0) -> UDPSocket:
        """Create a UDP socket owned by context ``xid``."""
        return UDPSocket(self, xid=xid)

    def register_socket(self, sock: UDPSocket, address: IPv4Address, port: int) -> None:
        """Bind bookkeeping; enforces address/port uniqueness."""
        if port == 0:
            port = self._allocate_ephemeral_port()
        else:
            for other in self._udp_ports.get(port, []):
                clash = (
                    other.address == address
                    or other.address == UNSPECIFIED
                    or address == UNSPECIFIED
                )
                if clash:
                    raise AddressInUseError(f"udp port {port} in use on {self.name}")
        sock.address = address
        sock.port = port
        self._udp_ports.setdefault(port, []).append(sock)

    def unregister_socket(self, sock: UDPSocket) -> None:
        """Remove a socket from the demux table."""
        holders = self._udp_ports.get(sock.port)
        if holders and sock in holders:
            holders.remove(sock)
            if not holders:
                del self._udp_ports[sock.port]

    def _allocate_ephemeral_port(self) -> int:
        start = self._next_ephemeral
        port = start
        while port in self._udp_ports:
            port += 1
            if port > EPHEMERAL_PORT_END:
                port = EPHEMERAL_PORT_START
            if port == start:
                raise AddressInUseError("ephemeral port space exhausted")
        self._next_ephemeral = port + 1
        if self._next_ephemeral > EPHEMERAL_PORT_END:
            self._next_ephemeral = EPHEMERAL_PORT_START
        return port

    # -- ICMP echo -------------------------------------------------------

    def register_echo_listener(self, ident: int, callback: Callable[[Packet], None]) -> None:
        """Register a pinger for echo replies with its identifier."""
        self._echo_listeners[ident] = callback

    def unregister_echo_listener(self, ident: int) -> None:
        """Remove a pinger registration."""
        self._echo_listeners.pop(ident, None)

    # -- local output path -------------------------------------------------

    def send(self, packet: Packet) -> None:
        """The LOCAL_OUT path for a packet generated on this node.

        Raises :class:`NoRouteError` when no policy rule/table matches
        (a failing ``sendto(2)`` with EHOSTUNREACH); filter drops are
        silent, as they are for real UDP senders.
        """
        packet.sent_at = self.sim.now
        if self.is_local_address(packet.dst):
            # Local delivery short-circuits through loopback semantics.
            self.sent_packets += 1
            if packet.src == UNSPECIFIED:
                packet.src = packet.dst
            self._local_deliver(packet, self.interfaces["lo"])
            return
        # mangle/OUTPUT first: a MARK set here steers the route lookup.
        if not self.netfilter.run_chain("mangle", HOOK_OUTPUT, packet, now=self.sim.now):
            self.dropped_filter += 1
            return
        src = packet.src if packet.src != UNSPECIFIED else None
        route = self.rpdb.lookup(
            packet.dst,
            src=src,
            mark=packet.mark,
            oif=packet.meta.get("bound_dev"),
        )
        if route is None:
            self.dropped_no_route += 1
            raise NoRouteError(f"{self.name}: no route to {packet.dst}")
        if packet.src == UNSPECIFIED:
            out_iface = self.interfaces.get(route.dev)
            if route.src is not None:
                packet.src = route.src
            elif out_iface is not None and out_iface.address is not None:
                packet.src = out_iface.address
        if not self.netfilter.run_chain(
            "filter", HOOK_OUTPUT, packet, out_iface=route.dev, now=self.sim.now
        ):
            self.dropped_filter += 1
            return
        if not self.netfilter.run_hook(
            HOOK_POSTROUTING, packet, out_iface=route.dev, now=self.sim.now
        ):
            self.dropped_filter += 1
            return
        self.sent_packets += 1
        self._transmit(packet, route)

    # -- input path ---------------------------------------------------------

    def receive(self, packet: Packet, iface: Interface) -> None:
        """A packet arrived on ``iface``."""
        if not self.netfilter.run_hook(
            HOOK_PREROUTING, packet, in_iface=iface.name, now=self.sim.now
        ):
            self.dropped_filter += 1
            return
        if self.is_local_address(packet.dst) or iface.name == "lo":
            if not self.netfilter.run_hook(
                HOOK_INPUT, packet, in_iface=iface.name, now=self.sim.now
            ):
                self.dropped_filter += 1
                return
            self._local_deliver(packet, iface)
            return
        if not self.forwarding:
            self.dropped_no_route += 1
            return
        packet.ttl -= 1
        if packet.ttl <= 0:
            self.dropped_ttl += 1
            return
        route = self.rpdb.lookup(
            packet.dst, src=packet.src, mark=packet.mark, iif=iface.name
        )
        if route is None:
            self.dropped_no_route += 1
            return
        if not self.netfilter.run_hook(
            HOOK_FORWARD,
            packet,
            in_iface=iface.name,
            out_iface=route.dev,
            now=self.sim.now,
        ):
            self.dropped_filter += 1
            return
        if not self.netfilter.run_hook(
            HOOK_POSTROUTING, packet, out_iface=route.dev, now=self.sim.now
        ):
            self.dropped_filter += 1
            return
        self.forwarded_packets += 1
        self._transmit(packet, route)

    # -- shared internals -----------------------------------------------------

    def _local_deliver(self, packet: Packet, iface: Interface) -> None:
        self.delivered_packets += 1
        if packet.proto == PROTO_ICMP and isinstance(packet.payload, IcmpEcho):
            echo = packet.payload
            if echo.kind == ECHO_REQUEST:
                reply = make_echo_reply(packet, packet.dst)
                try:
                    self.send(reply)
                except (NoRouteError, InterfaceDownError):
                    pass
                return
            if echo.kind == ECHO_REPLY:
                listener = self._echo_listeners.get(echo.ident)
                if listener is not None:
                    listener(packet)
                return
            return
        if packet.proto == PROTO_UDP:
            sock = self._match_socket(packet, iface)
            if sock is None:
                self.dropped_no_socket += 1
                return
            sock.deliver(packet)
            return
        self.dropped_no_socket += 1

    def _match_socket(self, packet: Packet, iface: Interface) -> Optional[UDPSocket]:
        candidates = self._udp_ports.get(packet.dport, [])
        best: Optional[UDPSocket] = None
        for sock in candidates:
            if sock.bound_device is not None and sock.bound_device != iface.name:
                continue
            if sock.address == packet.dst:
                return sock
            if sock.address == UNSPECIFIED and best is None:
                best = sock
        return best

    def install_bwlimiter(self, iface_name: str, **kwargs):
        """Attach PlanetLab-style per-slice egress shaping to an interface.

        Returns the :class:`~repro.vserver.bwlimit.SliceBandwidthLimiter`
        so callers can set per-xid caps.  Root-context traffic bypasses
        it, exactly as node management traffic does on PlanetLab.
        """
        from repro.vserver.bwlimit import SliceBandwidthLimiter

        iface = self.interfaces[iface_name]
        limiter = SliceBandwidthLimiter(
            self.sim, lambda packet: self._raw_transmit(packet, iface), **kwargs
        )
        self._bwlimiters[iface_name] = limiter
        return limiter

    def remove_bwlimiter(self, iface_name: str) -> None:
        """Detach shaping from an interface."""
        self._bwlimiters.pop(iface_name, None)

    def _transmit(self, packet: Packet, route: Route) -> None:
        iface = self.interfaces.get(route.dev)
        if iface is None:
            self.dropped_no_route += 1
            return
        limiter = self._bwlimiters.get(iface.name)
        if limiter is not None:
            limiter.send(packet)
            return
        self._raw_transmit(packet, iface)

    def _raw_transmit(self, packet: Packet, iface: Interface) -> None:
        try:
            iface.transmit(packet)
        except InterfaceDownError:
            self.dropped_iface_down += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<IPStack {self.name} ifaces={sorted(self.interfaces)}>"
