#!/usr/bin/env python3
"""The usage model in action: one slice at a time, enforced isolation.

Demonstrates §2.2/§2.3 end-to-end with two slices on the UMTS node:

1. vsys ACLs — a slice not authorized for the ``umts`` script cannot
   even open it;
2. the interface lock — an authorized second slice cannot ``start``
   while the first holds the connection;
3. the iptables drop rule — the second slice's packets are dropped at
   ``filter/OUTPUT`` when it tries to sneak onto ``ppp0``, whether by
   addressing the PPP peer directly or by binding to the interface;
4. the marking rules — only the owning slice's traffic to registered
   destinations takes the UMTS path.

Run with::

    python examples/slice_isolation_demo.py
"""

from repro import OneLabScenario
from repro.core.frontend import UmtsCommand
from repro.vserver.slice import Slice
from repro.vsys.daemon import VsysError


def main() -> None:
    scenario = OneLabScenario(seed=21)
    sim = scenario.sim
    node = scenario.napoli

    # A second experiment shows up on the same node.
    rival = Slice("rival_exp", 611)
    rival_sliver = node.create_sliver(rival)

    print("1) vsys ACL: the rival slice is not authorized for 'umts'")
    try:
        rival_sliver.vsys_open("umts")
        print("   unexpected: open succeeded")
    except VsysError as exc:
        print(f"   denied: {exc}")

    print("\n   ...the operator authorizes it (ACL update)")
    node.authorize_umts("rival_exp")
    rival_umts = UmtsCommand(rival_sliver)
    print("   rival can now open the vsys pipes")

    print("\n2) interface lock: unina_umts starts first")
    owner_umts = scenario.umts_command()
    result = owner_umts.start_blocking()
    print(f"   unina_umts start: exit {result.code}")
    result = rival_umts.start_blocking()
    print(f"   rival_exp start:  exit {result.code} -> {result.lines[0]}")
    result = rival_umts.stop_blocking()
    print(f"   rival_exp stop:   exit {result.code} -> {result.lines[0]}")

    print("\n3) drop rule: rival packets cannot egress ppp0")
    owner_umts.add_destination_blocking(scenario.inria_addr)
    ggsn_addr = str(scenario.operator.ggsn.internal_address)
    dropped_before = node.stack.dropped_filter

    sneaky = rival_sliver.socket()
    sneaky.sendto("to-ppp-peer", 32, ggsn_addr, 53)

    bound = rival_sliver.socket()
    bound.bind_to_device("ppp0")
    bound.sendto("bound-to-ppp0", 32, ggsn_addr, 53)
    sim.run(until=sim.now + 2.0)
    print(f"   filter/OUTPUT drops: {node.stack.dropped_filter - dropped_before} "
          "(one per attempt)")

    print("\n4) marking: owner slice reaches INRIA via UMTS, rival via eth0")
    seen = []
    server = scenario.inria_sliver.socket()
    server.bind(port=9000)
    server.on_receive = lambda payload, src, sport, pkt: seen.append(
        (payload, str(src))
    )
    scenario.napoli_sliver.socket().sendto("owner", 32, scenario.inria_addr, 9000)
    rival_sliver.socket().sendto("rival", 32, scenario.inria_addr, 9000)
    sim.run(until=sim.now + 5.0)
    for payload, src in sorted(seen):
        via = "UMTS" if src == scenario.umts_address() else "eth0"
        print(f"   {payload!r:8} arrived from {src:15} ({via})")

    owner_umts.stop_blocking()
    print("\nDone: umts stopped, lock released, rules removed.")
    print(f"   lock holder now: {node.umts_backend.lock.holder}")
    counters = node.umts_backend.lock
    print(f"   lock stats: {counters.acquisitions} acquisitions, "
          f"{counters.contentions} contentions")


if __name__ == "__main__":
    main()
