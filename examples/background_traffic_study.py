#!/usr/bin/env python3
"""VoIP under cross-traffic on the UMTS uplink (D-ITG script mode).

A study the extended testbed makes possible beyond the paper's two
single-flow experiments: how much background traffic can share the
UMTS connection with a VoIP call before the call degrades?  Uses
D-ITG's script mode — several flows defined in ITGSend flag syntax —
to run the paper's 72 kbit/s VoIP flow together with increasing levels
of background CBR on the same connection, and reports the VoIP flow's
jitter, RTT and loss at each level.

Run with::

    python examples/background_traffic_study.py [duration_seconds]
"""

import sys

from repro import OneLabScenario
from repro.traffic.decoder import ItgDecoder
from repro.traffic.receiver import ItgReceiver
from repro.traffic.script import ItgScriptRunner

BACKGROUND_LEVELS_KBPS = [0, 32, 64, 128]


def run_level(background_kbps: float, duration: float, seed: int):
    """One run: VoIP + background CBR over the same UMTS connection."""
    scenario = OneLabScenario(seed=seed)
    umts = scenario.umts_command()
    assert umts.start_blocking().ok
    assert umts.add_destination_blocking(scenario.inria_addr).ok

    voip_receiver = ItgReceiver(scenario.sim, scenario.inria_sliver.socket(), port=8999)
    ItgReceiver(scenario.sim, scenario.inria_sliver.socket(), port=9001)

    script = (
        f"-a {scenario.inria_addr} -rp 8999 -C 100 -c 90 "
        f"-t {duration * 1000:.0f} -m rttm\n"
    )
    if background_kbps > 0:
        pps = background_kbps * 1000 / (512 * 8)
        script += (
            f"-a {scenario.inria_addr} -rp 9001 -E {pps:.2f} -c 512 "
            f"-t {duration * 1000:.0f}\n"
        )
    runner = ItgScriptRunner(
        scenario.sim, scenario.napoli_sliver.socket, scenario.streams, script
    )
    runner.start()
    scenario.sim.run(until=scenario.sim.now + duration + 15.0)
    umts.stop_blocking()

    voip_sender = runner.senders[0]
    decoder = ItgDecoder(voip_sender.log, voip_receiver.log_for(voip_sender.flow_id))
    return decoder.summary()


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 60.0
    print("VoIP (72 kbit/s) + background CBR sharing one UMTS uplink "
          f"({duration:.0f} s per level)\n")
    print(f"{'background':>12} {'voip jitter':>13} {'voip RTT':>11} "
          f"{'voip loss':>11} {'verdict':>22}")
    for level in BACKGROUND_LEVELS_KBPS:
        summary = run_level(level, duration, seed=17)
        loss_pct = summary.loss_fraction * 100
        if summary.mean_rtt < 0.4 and loss_pct < 1.0:
            verdict = "call OK"
        elif loss_pct < 5.0:
            verdict = "degraded"
        else:
            verdict = "unusable"
        print(
            f"{level:>9} kb {summary.mean_jitter * 1000:10.2f} ms "
            f"{summary.mean_rtt * 1000:8.0f} ms {loss_pct:9.1f} % {verdict:>22}"
        )
    print("\nThe 144 kbit/s initial bearer carries the call plus a little")
    print("noise; once VoIP + background approach the bearer rate, queueing")
    print("drives RTT and loss up — until sustained demand eventually earns")
    print("the 384 kbit/s upgrade (visible with longer durations).")


if __name__ == "__main__":
    main()
