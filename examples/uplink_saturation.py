#!/usr/bin/env python3
"""The paper's saturation experiment (Figures 4-7).

Offers the 1 Mbit/s UDP CBR flow (1024-byte packets, 122 pkt/s) to the
UMTS uplink for 120 s and prints the four figure series.  The headline
effect is Figure 4's bearer adaptation: for the first ~50 s the uplink
delivers only ~150 kbit/s (the initial 144 kbit/s RAB), then "some sort
of adaptation algorithm happening inside the UMTS network" more than
doubles it (upgrade to 384 kbit/s) — visible both in the bitrate series
and in the RAB grade timeline the simulation exposes.

Run with::

    python examples/uplink_saturation.py [duration_seconds]
"""

import sys

from repro import PATH_ETHERNET, PATH_UMTS, cbr, run_characterization


def print_rows(result, label):
    """Print one row per 10 s of the four figure series."""
    bitrate = result.bitrate_kbps()
    jitter = result.jitter_series()
    loss = result.loss_series()
    rtt = result.rtt_series()
    print(f"\n  {label}: time -> bitrate[kbit/s] jitter[ms] loss[pkt/200ms] rtt[ms]")
    step = 10.0
    t = 0.0
    while t < result.spec.duration:
        row = [
            series.between(t, t + step).mean()
            for series in (bitrate, jitter, loss, rtt)
        ]
        print(
            f"    {t:5.0f}s  {row[0]:8.1f}  {row[1] * 1000:8.2f}  "
            f"{row[2]:6.1f}  {row[3] * 1000:9.1f}"
        )
        t += step


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 120.0
    print(f"Running 1 Mbit/s saturation ({duration:.0f} s per path)...")
    umts = run_characterization(cbr(duration=duration), path=PATH_UMTS, seed=3)
    ethernet = run_characterization(
        cbr(duration=duration), path=PATH_ETHERNET, seed=3
    )

    print("\nRAB grade timeline (UMTS uplink):")
    origin = umts.decoder.origin
    for t, rate in umts.rab_history.as_pairs():
        print(f"  t={max(0.0, t - origin):6.1f}s  ->  {rate / 1000:.0f} kbit/s")

    print_rows(umts, "UMTS-to-Ethernet")
    print_rows(ethernet, "Ethernet-to-Ethernet")

    su, se = umts.summary, ethernet.summary
    early = umts.bitrate_kbps().between(5.0, min(45.0, duration * 0.6)).mean()
    late = umts.bitrate_kbps().between(duration * 0.85, duration - 1.0).mean()
    print("\nSummary:")
    print(f"  UMTS bitrate     early {early:6.1f} kbit/s -> late {late:6.1f} kbit/s "
          f"(paper: ~150 -> ~400, 'more than doubled')")
    print(f"  UMTS loss        {su.loss_fraction * 100:5.1f}% of {su.packets_sent} pkts "
          f"(heavy; Ethernet: {se.packets_lost})")
    print(f"  UMTS RTT         mean {su.mean_rtt:5.2f} s, max {su.max_rtt:5.2f} s "
          f"(paper: 'as large as 3 seconds')")
    print(f"  Ethernet bitrate {se.mean_bitrate_kbps:7.1f} kbit/s (full offered load)")


if __name__ == "__main__":
    main()
