#!/usr/bin/env python3
"""Comparing UMTS networks, as the paper's design allows.

"our main goal was not to integrate a specific UMTS network into
PlanetLab, but rather to allow PlanetLab institutions to equip their
nodes with such kind of connectivity using a Telecom Operator of
choice.  In principle, this allows to perform experiments by using the
UMTS connection provided by different networks and to compare the
results."  (§2.1)

This example does exactly that comparison across the paper's two
networks — the commercial operator and the Alcatel-Lucent private
micro-cell — running the same VoIP and saturation workloads on each
and printing the operator-level differences: bearer adaptation speed,
radio quietness, and inbound reachability.

Run with::

    python examples/multi_operator_comparison.py [duration_seconds]
"""

import sys

from repro import (
    PATH_UMTS,
    cbr,
    commercial_operator,
    private_microcell,
    run_characterization,
    voip_g711,
)

OPERATORS = [
    ("commercial", commercial_operator),
    ("private micro-cell", private_microcell),
]


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 90.0

    print(f"{'':22}{'VoIP jitter':>14}{'VoIP RTT':>12}"
          f"{'sat. early':>12}{'sat. late':>11}{'upgrade@':>10}{'inbound':>9}")
    for label, factory in OPERATORS:
        voip = run_characterization(
            voip_g711(duration=duration),
            path=PATH_UMTS,
            seed=9,
            operator_factory=factory,
        )
        sat = run_characterization(
            cbr(duration=duration),
            path=PATH_UMTS,
            seed=9,
            operator_factory=factory,
        )
        early = sat.bitrate_kbps().between(2.0, 20.0).mean()
        late = sat.bitrate_kbps().between(duration - 30.0, duration - 5.0).mean()
        origin = sat.decoder.origin
        upgrades = [
            t - origin for t, rate in sat.rab_history.as_pairs()[1:]
        ]
        upgrade_at = f"{upgrades[0]:.0f}s" if upgrades else "never"
        inbound = "open" if not sat.scenario.operator.ggsn.block_inbound else "blocked"
        print(
            f"{label:22}"
            f"{voip.summary.mean_jitter * 1000:11.2f} ms"
            f"{voip.summary.mean_rtt * 1000:9.0f} ms"
            f"{early:9.0f} kb"
            f"{late:8.0f} kb"
            f"{upgrade_at:>10}"
            f"{inbound:>9}"
        )

    print("\nReading the table:")
    print("  - the commercial network upgrades the uplink bearer lazily")
    print("    (the paper's ~50 s plateau); the micro-cell grants it in seconds;")
    print("  - the micro-cell's radio path is quieter (lower jitter/RTT);")
    print("  - only the commercial operator firewalls inbound connections,")
    print("    which is why PlanetLab keeps control traffic on Ethernet.")


if __name__ == "__main__":
    main()
