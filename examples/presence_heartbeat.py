#!/usr/bin/env python3
"""An IMS-style presence service over the UMTS testbed.

§2.1 motivates the integration with the applications spreading over
UMTS networks: "The IP Multimedia Subsystem (IMS) [...] is triggering
the development of new generations of network applications such as
presence, conferencing and location-based services."

This example builds a miniature presence service with the public API —
the kind of experiment the extended testbed exists for:

- a presence *server* runs on the wired INRIA node;
- a mobile *presentity* inside the slice on the Napoli node registers
  over the UMTS connection and sends periodic heartbeats;
- a *watcher* (also at INRIA) subscribes and is notified when the
  mobile's state changes.

Mid-run the UMTS session drops (coverage loss); the server detects the
missed heartbeats and marks the presentity offline — then the slice
redials and presence recovers.  The run prints the heartbeat RTTs seen
over UMTS and the offline-detection latency.

Run with::

    python examples/presence_heartbeat.py
"""

from repro import OneLabScenario
from repro.sim.process import spawn

HEARTBEAT_PERIOD = 5.0
OFFLINE_AFTER = 12.0  # ~2.5 missed heartbeats
SERVER_PORT = 5060


class PresenceServer:
    """Tracks presentity liveness; notifies watchers on transitions."""

    def __init__(self, sim, socket, port=SERVER_PORT):
        self.sim = sim
        self.socket = socket
        socket.bind(port=port)
        socket.on_receive = self._on_message
        self.last_seen = {}
        self.online = {}
        self.watchers = []
        self.transitions = []
        self._sweep()

    def _on_message(self, payload, src, sport, packet):
        kind, name = payload
        if kind in ("REGISTER", "HEARTBEAT"):
            self.last_seen[name] = self.sim.now
            if not self.online.get(name, False):
                self._set_state(name, True)
            # Ack so the presentity can measure heartbeat RTT.
            self.socket.sendto(("ACK", name), 16, src, sport)

    def _set_state(self, name, is_online):
        self.online[name] = is_online
        self.transitions.append((self.sim.now, name, is_online))
        for watcher in self.watchers:
            watcher(self.sim.now, name, is_online)

    def _sweep(self):
        for name, seen in list(self.last_seen.items()):
            if self.online.get(name) and self.sim.now - seen > OFFLINE_AFTER:
                self._set_state(name, False)
        self.sim.schedule(1.0, self._sweep)


class Presentity:
    """The mobile client: registers, then heartbeats forever.

    Binds to the UMTS interface and address (the paper's "explicitly
    bind to the UMTS interface" usage), so its traffic rides the
    source-address rule — and visibly fails while the connection is
    down instead of silently falling back to the wired path.
    """

    def __init__(self, sim, sliver, name, server_addr, mobile_addr):
        self.sim = sim
        self.sliver = sliver
        self.name = name
        self.server_addr = server_addr
        self.send_failures = 0
        self.rtts = []
        self._pending = {}
        self.socket = None
        self.rebind(mobile_addr)
        spawn(sim, self._run(), name=f"presentity:{name}")

    def rebind(self, mobile_addr):
        """(Re)bind to the current UMTS address, as a real app would
        after a redial handed out a fresh address."""
        if self.socket is not None:
            self.socket.close()
        from repro.net.addressing import ip

        self.socket = self.sliver.socket()
        self.socket.bind(address=ip(mobile_addr))
        self.socket.bind_to_device("ppp0")
        self.socket.on_receive = self._on_ack

    def _run(self):
        self._send("REGISTER")
        while True:
            yield HEARTBEAT_PERIOD
            self._send("HEARTBEAT")

    def _send(self, kind):
        from repro.net.errors import NetworkError

        try:
            self.socket.sendto((kind, self.name), 64, self.server_addr, SERVER_PORT)
            self._pending[kind] = self.sim.now
        except NetworkError:
            self.send_failures += 1  # no route while the connection is down

    def _on_ack(self, payload, src, sport, packet):
        kind, name = payload
        sent = self._pending.pop("HEARTBEAT", self._pending.pop("REGISTER", None))
        if sent is not None:
            self.rtts.append(self.sim.now - sent)


def main() -> None:
    scenario = OneLabScenario(seed=13)
    sim = scenario.sim

    umts = scenario.umts_command()
    assert umts.start_blocking().ok
    assert umts.add_destination_blocking(scenario.inria_addr).ok
    print("UMTS connection up; presence service starting\n")

    server = PresenceServer(sim, scenario.inria_sliver.socket())
    events = []
    server.watchers.append(
        lambda t, name, online: events.append(
            f"  t={t:7.1f}s  {name} -> {'ONLINE' if online else 'OFFLINE'}"
        )
    )
    presentity = Presentity(
        sim,
        scenario.napoli_sliver,
        "alice@unina",
        scenario.inria_addr,
        scenario.umts_address(),
    )

    # 60 s of normal operation.
    sim.run(until=sim.now + 60.0)
    # Coverage loss: the operator drops the session.
    drop_time = sim.now
    print(f"t={drop_time:.1f}s: UMTS session dropped (coverage loss)")
    scenario.operator.drop_call(scenario.operator.calls[0], "coverage loss")
    sim.run(until=sim.now + 30.0)
    # The slice redials.
    result = umts.start_blocking()
    print(f"t={sim.now:.1f}s: redial -> exit {result.code} "
          f"(new address {scenario.umts_address()})")
    presentity.rebind(scenario.umts_address())
    sim.run(until=sim.now + 30.0)

    print("\nWatcher notifications:")
    for line in events:
        print(line)

    offline_events = [t for t, _, online in server.transitions if not online]
    if offline_events:
        print(f"\nOffline detected {offline_events[0] - drop_time:.1f}s after the drop "
              f"(threshold {OFFLINE_AFTER:.0f}s)")
    rtts_ms = [r * 1000 for r in presentity.rtts]
    print(f"Heartbeat RTT over UMTS: mean {sum(rtts_ms) / len(rtts_ms):.0f} ms, "
          f"max {max(rtts_ms):.0f} ms over {len(rtts_ms)} acks")
    print(f"Heartbeats lost to the outage: {presentity.send_failures}")

    umts.stop_blocking()


if __name__ == "__main__":
    main()
