#!/usr/bin/env python3
"""Quickstart: bring UMTS up on a PlanetLab node and use it.

Builds the paper's two-node OneLab scenario (§3): a UMTS-equipped
PlanetLab node in Napoli and a wired one at INRIA.  From inside the
``unina_umts`` slice it runs the ``umts`` command — the paper's
contribution — and sends traffic over both the wired and the UMTS
path, showing the different source addresses and round-trip times.

Run with::

    python examples/quickstart.py
"""

from repro import OneLabScenario


def main() -> None:
    scenario = OneLabScenario(seed=7)
    sim = scenario.sim
    print(f"Napoli node : {scenario.napoli.name} @ {scenario.napoli_addr}")
    print(f"INRIA node  : {scenario.inria.name} @ {scenario.inria_addr}")
    print(f"Operator    : {scenario.operator.name}")
    print(f"Slice       : {scenario.slice.name} (xid {scenario.slice.xid})")
    print()

    # The slice talks to the root context only through vsys.
    umts = scenario.umts_command()

    print("$ umts status")
    for line in umts.status_blocking().lines:
        print(f"  {line}")

    print("\n$ umts start")
    result = umts.start_blocking()
    for line in result.lines:
        print(f"  {line}")
    if not result.ok:
        raise SystemExit("umts start failed")

    print("\n$ umts add 138.96.250.100")
    for line in umts.add_destination_blocking(scenario.inria_addr).lines:
        print(f"  {line}")

    print("\n$ umts status")
    for line in umts.status_blocking().lines:
        print(f"  {line}")

    # One datagram over each path: the INRIA server reports the source
    # address it saw, proving which interface carried the packet.
    seen = []
    server = scenario.inria_sliver.socket()
    server.bind(port=9000)
    server.on_receive = lambda payload, src, sport, pkt: seen.append(
        (payload, str(src))
    )

    sender = scenario.napoli_sliver.socket()
    sender.sendto("over-umts", 64, scenario.inria_addr, 9000)
    sim.run(until=sim.now + 5.0)

    # Remove the destination: traffic falls back to the wired path.
    umts.del_destination_blocking(scenario.inria_addr)
    sender.sendto("over-ethernet", 64, scenario.inria_addr, 9000)
    sim.run(until=sim.now + 5.0)

    print("\nWhat the INRIA node saw:")
    for payload, src in seen:
        via = "UMTS (ppp0)" if src == scenario.umts_address() else "Ethernet (eth0)"
        print(f"  {payload!r:18} from {src:15} -> {via}")

    print("\n$ umts stop")
    for line in umts.stop_blocking().lines:
        print(f"  {line}")

    print(f"\nSimulated time elapsed: {sim.now:.1f} s")


if __name__ == "__main__":
    main()
