#!/usr/bin/env python3
"""The paper's VoIP experiment (Figures 1-3).

Runs the 72 kbit/s G.711-like UDP CBR flow for 120 s over both the
UMTS-to-Ethernet and the Ethernet-to-Ethernet path, then prints the
figure series (bitrate, jitter, RTT in 200 ms windows, downsampled for
the terminal) and the summary comparison the paper discusses:

- both paths deliver the required 72 kbit/s on average, UMTS with more
  fluctuation;
- UMTS jitter is higher and spikier (tens of ms vs sub-ms);
- UMTS RTT is higher (hundreds of ms, spikes toward ~700 ms);
- packet loss is zero on both paths.

Run with::

    python examples/voip_characterization.py [duration_seconds]
"""

import sys

from repro import PATH_ETHERNET, PATH_UMTS, run_characterization, voip_g711


def sparkline(series, scale=None) -> str:
    """A terminal rendering of a windowed series."""
    blocks = " .:-=+*#%@"
    values = [v for v in series.values if v == v]  # drop NaN
    if not values:
        return "(no samples)"
    top = scale if scale is not None else max(values) or 1.0
    out = []
    for value in series.values:
        if value != value:
            out.append(" ")
        else:
            index = min(len(blocks) - 1, int(value / top * (len(blocks) - 1)))
            out.append(blocks[index])
    return "".join(out)


def downsample(series, buckets=72):
    """Average the 200 ms series into a fixed number of buckets."""
    if len(series) <= buckets:
        return series
    window = (series.times[-1] - series.times[0]) / buckets + 1e-9
    return series.window_average(window, start=series.times[0])


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 120.0
    spec = lambda: voip_g711(duration=duration)  # noqa: E731

    print(f"Running VoIP characterization ({duration:.0f} s per path)...")
    umts = run_characterization(spec(), path=PATH_UMTS, seed=3)
    ethernet = run_characterization(spec(), path=PATH_ETHERNET, seed=3)

    figures = [
        ("Figure 1 - bitrate [kbit/s]", "bitrate_kbps", 1.0),
        ("Figure 2 - jitter [ms]", "jitter_series", 1000.0),
        ("Figure 3 - RTT [ms]", "rtt_series", 1000.0),
    ]
    for title, accessor, unit in figures:
        print(f"\n{title}")
        for label, result in (("UMTS", umts), ("eth ", ethernet)):
            series = downsample(getattr(result, accessor)())
            shown = [v * unit for v in series.values if v == v]
            scaled = series
            scaled.values = [
                v * unit if v == v else v for v in series.values
            ]
            print(f"  {label} |{sparkline(scaled)}|")
            print(
                f"       mean={sum(shown) / len(shown):8.2f}  "
                f"max={max(shown):8.2f}"
            )

    print("\nSummary (paper's qualitative claims):")
    su, se = umts.summary, ethernet.summary
    print(f"  bitrate  UMTS {su.mean_bitrate_kbps:6.1f} kbit/s   "
          f"eth {se.mean_bitrate_kbps:6.1f} kbit/s   (both ~72)")
    print(f"  jitter   UMTS {su.mean_jitter * 1000:6.2f} ms       "
          f"eth {se.mean_jitter * 1000:6.2f} ms       (UMTS >>)")
    print(f"  RTT max  UMTS {su.max_rtt * 1000:6.0f} ms       "
          f"eth {se.max_rtt * 1000:6.0f} ms       (UMTS toward ~700)")
    print(f"  loss     UMTS {su.packets_lost:6d} pkt      "
          f"eth {se.packets_lost:6d} pkt      (both 0)")


if __name__ == "__main__":
    main()
