"""Legacy setup shim.

The environment has no ``wheel`` package, so PEP 517/660 editable
installs cannot build; this shim lets ``pip install -e . --no-use-pep517
--no-build-isolation`` fall back to ``setup.py develop``.
"""

from setuptools import setup

setup()
